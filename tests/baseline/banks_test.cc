#include "baseline/banks.h"

#include <set>

#include <gtest/gtest.h>

#include "baseline/banks_i.h"
#include "baseline/banks_w.h"
#include "search/query_parser.h"
#include "testutil/paper_graphs.h"

namespace tgks::baseline {
namespace {

using graph::NodeId;
using graph::TemporalGraph;
using search::Query;
using temporal::IntervalSet;

Query MustParse(const std::string& text) {
  auto q = search::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << text << ": " << q.status();
  return std::move(q).value();
}

TEST(BanksTest, GeneratesAndDiscardsInvalidResults) {
  // Time-oblivious BANKS generates the Mary-Microsoft-John tree; the
  // temporal post-filter must count and discard it.
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  BanksOptions options;
  options.k = 0;
  auto r = RunBanks(g, {{ids.mary}, {ids.john}}, options);
  EXPECT_TRUE(r.exhausted);
  EXPECT_GT(r.counters.invalid_time, 0);
  for (const auto& tree : r.results) {
    EXPECT_FALSE(tree.time.IsEmpty());
  }
}

TEST(BanksTest, ResultsSortedByWeight) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  BanksOptions options;
  options.k = 0;
  auto r = RunBanks(g, {{ids.mary}, {ids.john}}, options);
  for (size_t i = 1; i < r.results.size(); ++i) {
    EXPECT_LE(r.results[i - 1].total_weight, r.results[i].total_weight);
  }
}

TEST(BanksTest, SnapshotModeOnlySeesAliveElements) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  BanksOptions options;
  options.k = 0;
  options.snapshot = 0;  // Only Mary, John, Microsoft alive.
  auto r = RunBanks(g, {{ids.mary}, {ids.john}}, options);
  // At t0 the Microsoft-John edge (from t5) is dead: no connection.
  EXPECT_TRUE(r.results.empty());
  options.snapshot = 6;
  r = RunBanks(g, {{ids.mary}, {ids.john}}, options);
  ASSERT_FALSE(r.results.empty());
  for (const auto& tree : r.results) {
    EXPECT_TRUE(tree.time.Contains(6));
  }
}

TEST(BanksTest, TopKStopsEarly) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  BanksOptions all;
  all.k = 0;
  BanksOptions topk;
  topk.k = 1;
  topk.bound = search::UpperBoundKind::kEmpirical;
  const std::vector<std::vector<NodeId>> matches = {{ids.mary}, {ids.john}};
  auto r_all = RunBanks(g, matches, all);
  auto r_top = RunBanks(g, matches, topk);
  EXPECT_LE(r_top.counters.pops, r_all.counters.pops);
  ASSERT_GE(r_top.results.size(), 1u);
  EXPECT_DOUBLE_EQ(r_top.results[0].total_weight,
                   r_all.results[0].total_weight);
}

TEST(BanksWTest, PostFiltersPredicate) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const Query q = MustParse("mary, john result time precedes 5");
  BanksOptions options;
  options.k = 0;
  auto r = RunBanksW(g, q, {{ids.mary}, {ids.john}}, options);
  ASSERT_FALSE(r.results.empty());
  for (const auto& tree : r.results) {
    EXPECT_LT(tree.time.Start(), 5);
  }
  EXPECT_GT(r.counters.predicate_rejected + r.counters.invalid_time, 0);
}

TEST(BanksWTest, TemporalRankingSortsByRequestedFactor) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const Query q =
      MustParse("mary, john rank by ascending order of result start time");
  BanksOptions options;
  options.k = 2;
  auto r = RunBanksW(g, q, {{ids.mary}, {ids.john}}, options);
  ASSERT_GE(r.results.size(), 2u);
  EXPECT_LE(r.results[0].time.Start(), r.results[1].time.Start());
}

TEST(BanksITest, MergesAcrossSnapshotsWithExactTimes) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const Query q = MustParse("mary, john");
  BanksIOptions options;
  options.per_snapshot_k = 0;
  options.k = 0;
  auto r = RunBanksI(g, q, {{ids.mary}, {ids.john}}, options);
  EXPECT_EQ(r.snapshots_traversed, 8);
  ASSERT_FALSE(r.results.empty());
  // The Bob-Ross tree must carry its full [6,7] validity even though each
  // snapshot finds it separately.
  const bool has_ross = std::any_of(
      r.results.begin(), r.results.end(), [&](const auto& tree) {
        return std::binary_search(tree.nodes.begin(), tree.nodes.end(),
                                  ids.ross) &&
               tree.time == IntervalSet{{6, 7}};
      });
  EXPECT_TRUE(has_ross);
}

TEST(BanksITest, PredicateClipsTraversedSnapshots) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const std::vector<std::vector<NodeId>> matches = {{ids.mary}, {ids.john}};
  BanksIOptions options;
  options.per_snapshot_k = 0;
  options.k = 0;
  auto precedes =
      RunBanksI(g, MustParse("a, b result time precedes 5"), matches, options);
  EXPECT_EQ(precedes.snapshots_traversed, 5);  // t0..t4.
  auto overlaps = RunBanksI(g, MustParse("a, b result time overlaps [2,3]"),
                            matches, options);
  EXPECT_EQ(overlaps.snapshots_traversed, 2);
  auto meets =
      RunBanksI(g, MustParse("a, b result time meets 4"), matches, options);
  EXPECT_EQ(meets.snapshots_traversed, 8);  // No clipping (paper-faithful).
  auto contained = RunBanksI(
      g, MustParse("a, b result time contained by [3,4]"), matches, options);
  EXPECT_EQ(contained.snapshots_traversed, 8);
}

TEST(BanksITest, PerSnapshotTopKLimitsWork) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const Query q = MustParse("mary, john");
  const std::vector<std::vector<NodeId>> matches = {{ids.mary}, {ids.john}};
  BanksIOptions exhaustive;
  exhaustive.per_snapshot_k = 0;
  exhaustive.k = 0;
  BanksIOptions limited;
  limited.per_snapshot_k = 1;
  limited.k = 0;
  auto full = RunBanksI(g, q, matches, exhaustive);
  auto capped = RunBanksI(g, q, matches, limited);
  EXPECT_LE(capped.counters.pops, full.counters.pops);
  EXPECT_LE(capped.results.size(), full.results.size());
  // The per-snapshot best (smallest) tree must still be present.
  ASSERT_FALSE(capped.results.empty());
  EXPECT_DOUBLE_EQ(capped.results[0].total_weight,
                   full.results[0].total_weight);
}

TEST(BanksITest, FinalTopKTruncates) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const Query q = MustParse("mary, john");
  BanksIOptions options;
  options.per_snapshot_k = 0;
  options.k = 1;
  auto r = RunBanksI(g, q, {{ids.mary}, {ids.john}}, options);
  EXPECT_EQ(r.results.size(), 1u);
}

TEST(BanksITest, TemporalRankingOrdersMergedResults) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const Query q =
      MustParse("mary, john rank by ascending order of result start time");
  BanksIOptions options;
  options.per_snapshot_k = 0;
  options.k = 0;
  auto r = RunBanksI(g, q, {{ids.mary}, {ids.john}}, options);
  for (size_t i = 1; i < r.results.size(); ++i) {
    EXPECT_LE(r.results[i - 1].time.Start(), r.results[i].time.Start());
  }
}

TEST(BanksWTest, CountersAccountForAllCandidates) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const Query q = MustParse("mary, john");
  BanksOptions options;
  options.k = 0;
  auto r = RunBanksW(g, q, {{ids.mary}, {ids.john}}, options);
  // Every generated tree is accepted, invalid, predicate-rejected, or a
  // duplicate.
  EXPECT_EQ(r.counters.generated,
            r.counters.results + r.counters.invalid_time +
                r.counters.predicate_rejected + r.counters.duplicates);
}

TEST(BanksITest, PredicateCheckedOnMergedResults) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const Query q = MustParse("mary, john result time meets 7");
  BanksIOptions options;
  options.per_snapshot_k = 0;
  options.k = 0;
  auto r = RunBanksI(g, q, {{ids.mary}, {ids.john}}, options);
  for (const auto& tree : r.results) {
    EXPECT_TRUE(tree.time.Contains(7));
    EXPECT_TRUE(tree.time.Start() == 7 || tree.time.End() == 7);
  }
}

}  // namespace
}  // namespace tgks::baseline
