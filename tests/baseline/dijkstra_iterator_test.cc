#include "baseline/dijkstra_iterator.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "testutil/paper_graphs.h"

namespace tgks::baseline {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TemporalGraph;
using temporal::IntervalSet;

TEST(DijkstraIteratorTest, WholeGraphIgnoresTime) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  DijkstraIterator iter(g, ids.john);
  while (iter.Next() != graph::kInvalidNode) {
  }
  // Time-obliviously, Mary is 2 hops away via Microsoft.
  ASSERT_TRUE(iter.DistanceTo(ids.mary).has_value());
  EXPECT_DOUBLE_EQ(*iter.DistanceTo(ids.mary), 2.0);
}

TEST(DijkstraIteratorTest, SnapshotRestrictsReachability) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  // At t0 only Mary-Microsoft exists (John-Microsoft starts at t5).
  DijkstraIterator at0(g, ids.john, 0);
  while (at0.Next() != graph::kInvalidNode) {
  }
  EXPECT_FALSE(at0.DistanceTo(ids.mary).has_value());
  // At t6 the Mary-Microsoft edge ([0,2]) is dead; Bob-Ross (3 hops) wins.
  DijkstraIterator at6(g, ids.john, 6);
  while (at6.Next() != graph::kInvalidNode) {
  }
  ASSERT_TRUE(at6.DistanceTo(ids.mary).has_value());
  EXPECT_DOUBLE_EQ(*at6.DistanceTo(ids.mary), 3.0);
}

TEST(DijkstraIteratorTest, SnapshotWithDeadSourceIsExhausted) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  DijkstraIterator iter(g, ids.ross, 0);  // Ross exists from t5.
  EXPECT_FALSE(iter.PeekDistance().has_value());
  EXPECT_EQ(iter.Next(), graph::kInvalidNode);
}

TEST(DijkstraIteratorTest, PopsInNondecreasingOrder) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  DijkstraIterator iter(g, 0);
  double last = 0;
  for (NodeId n = iter.Next(); n != graph::kInvalidNode; n = iter.Next()) {
    const double d = *iter.DistanceTo(n);
    EXPECT_GE(d, last);
    last = d;
  }
}

TEST(DijkstraIteratorTest, PathEdgesWalksToSource) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  DijkstraIterator iter(g, ids.john);
  while (iter.Next() != graph::kInvalidNode) {
  }
  const auto edges = iter.PathEdges(ids.mary);
  EXPECT_EQ(edges.size(), 2u);  // Mary -> Microsoft -> John.
  NodeId cur = ids.mary;
  for (const auto e : edges) {
    EXPECT_EQ(g.edge(e).src, cur);
    cur = g.edge(e).dst;
  }
  EXPECT_EQ(cur, ids.john);
  EXPECT_TRUE(iter.PathEdges(ids.john).empty());
}

TEST(DijkstraIteratorTest, RespectsWeights) {
  GraphBuilder b(4);
  const NodeId a = b.AddNode("a");
  const NodeId c = b.AddNode("c");
  const NodeId d = b.AddNode("d");
  b.AddEdge(c, a, IntervalSet{{0, 3}}, 10.0);  // Direct but heavy.
  b.AddEdge(c, d, IntervalSet{{0, 3}}, 1.0);
  b.AddEdge(d, a, IntervalSet{{0, 3}}, 2.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  DijkstraIterator iter(*g, a);
  while (iter.Next() != graph::kInvalidNode) {
  }
  EXPECT_DOUBLE_EQ(*iter.DistanceTo(c), 3.0);  // Via d.
  const auto edges = iter.PathEdges(c);
  EXPECT_EQ(edges.size(), 2u);
}

}  // namespace
}  // namespace tgks::baseline
