// LruCache unit tests: byte-budget eviction order, recency promotion,
// oversized rejection, insert-keeps-existing convergence, and eviction
// safety for outstanding readers.

#include "cache/lru.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace tgks::cache {
namespace {

std::shared_ptr<const std::string> Val(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

TEST(LruCacheTest, LookupMissThenHit) {
  LruCache<std::string, std::string> cache(1024);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  cache.Insert("a", Val("alpha"), 10);
  const auto got = cache.Lookup("a");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, "alpha");

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.bytes, 10);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedToHoldBudget) {
  LruCache<std::string, std::string> cache(30);
  cache.Insert("a", Val("a"), 10);
  cache.Insert("b", Val("b"), 10);
  cache.Insert("c", Val("c"), 10);
  // Budget full at 30 bytes; inserting d must evict a (the oldest).
  cache.Insert("d", Val("d"), 10);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_NE(cache.Lookup("d"), nullptr);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 3);
  EXPECT_EQ(stats.bytes, 30);
}

TEST(LruCacheTest, LookupPromotesRecency) {
  LruCache<std::string, std::string> cache(30);
  cache.Insert("a", Val("a"), 10);
  cache.Insert("b", Val("b"), 10);
  cache.Insert("c", Val("c"), 10);
  // Touch a so b becomes the LRU victim.
  EXPECT_NE(cache.Lookup("a"), nullptr);
  cache.Insert("d", Val("d"), 10);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
}

TEST(LruCacheTest, OneInsertCanEvictSeveral) {
  LruCache<std::string, std::string> cache(40);
  cache.Insert("a", Val("a"), 10);
  cache.Insert("b", Val("b"), 10);
  cache.Insert("c", Val("c"), 10);
  cache.Insert("big", Val("big"), 35);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_EQ(cache.Lookup("c"), nullptr);
  EXPECT_NE(cache.Lookup("big"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 3);
  EXPECT_EQ(cache.stats().bytes, 35);
}

TEST(LruCacheTest, OversizedValueIsReturnedButNotStored) {
  LruCache<std::string, std::string> cache(20);
  cache.Insert("a", Val("a"), 10);
  const auto huge = cache.Insert("huge", Val("huge"), 1000);
  ASSERT_NE(huge, nullptr);
  EXPECT_EQ(*huge, "huge");  // Caller still gets its value back.
  EXPECT_EQ(cache.Lookup("huge"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);  // Nothing was evicted for it.
  EXPECT_EQ(cache.stats().oversized, 1);
  EXPECT_EQ(cache.stats().entries, 1);
}

TEST(LruCacheTest, ZeroBudgetStoresNothingButCountsTraffic) {
  LruCache<std::string, std::string> cache(0);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  cache.Insert("a", Val("a"), 1);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().oversized, 1);
}

TEST(LruCacheTest, DuplicateInsertKeepsExistingValue) {
  // Two racers compute the same key; the first insert must win so both end
  // up sharing one object (and accounted bytes don't double).
  LruCache<std::string, std::string> cache(100);
  const auto first = cache.Insert("k", Val("first"), 10);
  const auto second = cache.Insert("k", Val("second"), 10);
  EXPECT_EQ(*second, "first");
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().insertions, 1);
  EXPECT_EQ(cache.stats().bytes, 10);
}

TEST(LruCacheTest, EvictedValueStaysValidForHolders) {
  LruCache<std::string, std::string> cache(10);
  const auto held = cache.Insert("a", Val("alpha"), 10);
  cache.Insert("b", Val("beta"), 10);  // Evicts a.
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(*held, "alpha");  // The shared_ptr keeps the value alive.
}

TEST(LruCacheTest, ClearDropsEverything) {
  LruCache<std::string, std::string> cache(100);
  cache.Insert("a", Val("a"), 10);
  cache.Insert("b", Val("b"), 10);
  cache.Clear();
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().bytes, 0);
}

TEST(CacheStatsTest, HitRateAndToString) {
  CacheStats stats;
  EXPECT_EQ(stats.HitRate(), 0.0);
  stats.hits = 3;
  stats.misses = 1;
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.75);
  EXPECT_NE(stats.ToString().find("hits=3"), std::string::npos);
}

}  // namespace
}  // namespace tgks::cache
