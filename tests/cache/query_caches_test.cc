// In-engine cache bundle tests: match-set materialization and case folding
// (level 1), viability key canonicalization (level 2), and the bundle's
// InvalidateAll generation hook.

#include "cache/query_caches.h"

#include <gtest/gtest.h>

#include "cache/viability_cache.h"
#include "graph/graph_builder.h"
#include "graph/inverted_index.h"
#include "temporal/interval_set.h"

namespace tgks::cache {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TemporalGraph;
using temporal::IntervalSet;

TemporalGraph SmallGraph() {
  GraphBuilder b(100, graph::ValidityPolicy::kClamp);
  b.AddNode("alice likes graphs", IntervalSet{{0, 10}});
  b.AddNode("bob likes chains", IntervalSet{{5, 20}});
  b.AddNode("carol", IntervalSet{{8, 40}});
  b.AddEdge(0, 1, IntervalSet{{5, 10}});
  b.AddEdge(1, 2, IntervalSet{{8, 15}});
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(MatchSetCacheTest, MaterializesPostingAndAliveUnion) {
  const TemporalGraph g = SmallGraph();
  const graph::InvertedIndex index(g);
  MatchSetCache cache(1 << 20);

  bool hit = true;
  const auto likes = cache.GetOrCompute(g, index, "likes", &hit);
  EXPECT_FALSE(hit);
  ASSERT_NE(likes, nullptr);
  EXPECT_EQ(likes->nodes, (std::vector<NodeId>{0, 1}));
  // Alive union of nodes 0 and 1: [0,10] | [5,20] = [0,20].
  EXPECT_EQ(likes->alive, (IntervalSet{{0, 20}}));

  const auto again = cache.GetOrCompute(g, index, "likes", &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(again.get(), likes.get());  // Same shared object.
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(MatchSetCacheTest, CaseFoldsLikeTheInvertedIndex) {
  const TemporalGraph g = SmallGraph();
  const graph::InvertedIndex index(g);
  MatchSetCache cache(1 << 20);
  bool hit = true;
  const auto lower = cache.GetOrCompute(g, index, "alice", &hit);
  EXPECT_FALSE(hit);
  const auto upper = cache.GetOrCompute(g, index, "ALICE", &hit);
  EXPECT_TRUE(hit);  // Folds to the same key — one cached entry.
  EXPECT_EQ(lower.get(), upper.get());
}

TEST(MatchSetCacheTest, UnknownKeywordCachesEmptySet) {
  const TemporalGraph g = SmallGraph();
  const graph::InvertedIndex index(g);
  MatchSetCache cache(1 << 20);
  bool hit = true;
  const auto none = cache.GetOrCompute(g, index, "nosuchword", &hit);
  EXPECT_FALSE(hit);
  EXPECT_TRUE(none->nodes.empty());
  EXPECT_TRUE(none->alive.IsEmpty());
  cache.GetOrCompute(g, index, "nosuchword", &hit);
  EXPECT_TRUE(hit);  // Negative entries are cached too.
}

TEST(ViabilityKeyTest, KeywordOrderDoesNotChangeTheKey) {
  // ComputeViability is keyword-order-invariant, so the key must be too.
  const std::vector<std::vector<NodeId>> ab = {{1, 2, 3}, {4, 5}};
  const std::vector<std::vector<NodeId>> ba = {{4, 5}, {1, 2, 3}};
  EXPECT_EQ(MakeViabilityKey(ab), MakeViabilityKey(ba));
  EXPECT_EQ(ViabilityKeyHash{}(MakeViabilityKey(ab)),
            ViabilityKeyHash{}(MakeViabilityKey(ba)));
}

TEST(ViabilityKeyTest, DifferentListsDifferentKeys) {
  const std::vector<std::vector<NodeId>> a = {{1, 2, 3}, {4, 5}};
  const std::vector<std::vector<NodeId>> b = {{1, 2, 3}, {4, 6}};
  EXPECT_FALSE(MakeViabilityKey(a) == MakeViabilityKey(b));
}

TEST(ViabilityKeyTest, ListBoundariesMatter) {
  // {1,2},{3} vs {1},{2,3}: same flattened ids, different partitions. The
  // length prefix in the encoding must keep them distinct.
  const std::vector<std::vector<NodeId>> a = {{1, 2}, {3}};
  const std::vector<std::vector<NodeId>> b = {{1}, {2, 3}};
  EXPECT_FALSE(MakeViabilityKey(a) == MakeViabilityKey(b));
}

TEST(ViabilityCacheTest, InsertThenLookup) {
  ViabilityCache cache(1 << 20);
  const ViabilityKey key = MakeViabilityKey({{1, 2}});
  EXPECT_EQ(cache.Lookup(key), nullptr);
  auto value = std::make_shared<ViabilityVector>(3);
  (*value)[1] = IntervalSet{{0, 5}};
  const auto stored = cache.Insert(key, value);
  EXPECT_EQ(stored.get(), value.get());
  const auto got = cache.Lookup(key);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ((*got)[1], (IntervalSet{{0, 5}}));
}

TEST(QueryCachesTest, InvalidateAllClearsBothLevelsAndBumpsGeneration) {
  const TemporalGraph g = SmallGraph();
  const graph::InvertedIndex index(g);
  QueryCaches caches;
  bool hit = true;
  caches.match_sets().GetOrCompute(g, index, "likes", &hit);
  caches.viability().Insert(MakeViabilityKey({{0, 1}}),
                            std::make_shared<ViabilityVector>(3));
  EXPECT_EQ(caches.generation(), 0u);

  EXPECT_EQ(caches.InvalidateAll(), 1u);
  EXPECT_EQ(caches.generation(), 1u);
  EXPECT_EQ(caches.match_sets().stats().entries, 0);
  EXPECT_EQ(caches.viability().stats().entries, 0);
  caches.match_sets().GetOrCompute(g, index, "likes", &hit);
  EXPECT_FALSE(hit);  // Gone — recomputed after invalidation.
}

}  // namespace
}  // namespace tgks::cache
