// ResultCache tests: lookup/insert round trip, and the generational
// invalidation contract — a producer that started under generation G must
// not be able to resurrect its answer once InvalidateAll has moved the
// cache past G.

#include "cache/result_cache.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace tgks::cache {
namespace {

std::shared_ptr<const CachedResult> Body(const std::string& s) {
  return std::make_shared<const CachedResult>(CachedResult{s});
}

TEST(ResultCacheTest, InsertThenLookup) {
  ResultCache cache(1 << 20);
  EXPECT_EQ(cache.Lookup("fp"), nullptr);
  cache.Insert("fp", Body("{\"status\":\"ok\"}"), cache.generation());
  const auto got = cache.Lookup("fp");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->body, "{\"status\":\"ok\"}");
}

TEST(ResultCacheTest, InvalidateAllClearsAndBumpsGeneration) {
  ResultCache cache(1 << 20);
  cache.Insert("fp", Body("old"), cache.generation());
  EXPECT_EQ(cache.generation(), 0u);
  EXPECT_EQ(cache.InvalidateAll(), 1u);
  EXPECT_EQ(cache.generation(), 1u);
  EXPECT_EQ(cache.invalidations(), 1);
  EXPECT_EQ(cache.Lookup("fp"), nullptr);
}

TEST(ResultCacheTest, StaleProducerCannotResurrectOldAnswer) {
  ResultCache cache(1 << 20);
  // A slow search began under generation 0...
  const uint64_t started_at = cache.generation();
  // ...the graph advanced an epoch while it ran...
  cache.InvalidateAll();
  // ...so its insert must be dropped on the floor.
  cache.Insert("fp", Body("pre-invalidation"), started_at);
  EXPECT_EQ(cache.Lookup("fp"), nullptr);

  // A search started under the NEW generation inserts fine.
  cache.Insert("fp", Body("fresh"), cache.generation());
  const auto got = cache.Lookup("fp");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->body, "fresh");
}

TEST(ResultCacheTest, RepeatedInvalidationKeepsCounting) {
  ResultCache cache(1 << 20);
  EXPECT_EQ(cache.InvalidateAll(), 1u);
  EXPECT_EQ(cache.InvalidateAll(), 2u);
  EXPECT_EQ(cache.InvalidateAll(), 3u);
  EXPECT_EQ(cache.invalidations(), 3);
}

TEST(ResultCacheTest, ByteBudgetEvictsBodies) {
  // Each entry costs ~sizeof(CachedResult) + 96 + key + body; a 256-byte
  // budget holds one such entry but not two.
  ResultCache cache(256);
  cache.Insert("a", Body(std::string(64, 'a')), 0);
  cache.Insert("b", Body(std::string(64, 'b')), 0);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 2);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_LE(stats.bytes, 256);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("b"), nullptr);
}

}  // namespace
}  // namespace tgks::cache
