// SingleFlight tests: leader/follower semantics, the insert-before-Finish
// contract, and a real-thread-pool hammer (runs under TSan in CI) proving
// that exactly one leader emerges per open flight and no callback is lost.

#include "cache/single_flight.h"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.h"

namespace tgks::cache {
namespace {

using Callback = std::function<void(int)>;

TEST(SingleFlightTest, FirstCallerLeadsAndKeepsItsCallback) {
  SingleFlight<Callback> flights;
  int delivered = -1;
  Callback done = [&delivered](int v) { delivered = v; };
  EXPECT_TRUE(flights.LeadOrJoin("k", &done));
  ASSERT_NE(done, nullptr);  // The leader's callback is left untouched.
  done(7);
  EXPECT_EQ(delivered, 7);
  EXPECT_TRUE(flights.Finish("k").empty());
  EXPECT_EQ(flights.coalesced(), 0);
}

TEST(SingleFlightTest, FollowersParkUntilFinish) {
  SingleFlight<Callback> flights;
  Callback lead = [](int) {};
  ASSERT_TRUE(flights.LeadOrJoin("k", &lead));

  std::vector<int> delivered;
  Callback f1 = [&delivered](int v) { delivered.push_back(v); };
  Callback f2 = [&delivered](int v) { delivered.push_back(v); };
  EXPECT_FALSE(flights.LeadOrJoin("k", &f1));
  EXPECT_FALSE(flights.LeadOrJoin("k", &f2));
  EXPECT_EQ(flights.coalesced(), 2);

  std::vector<Callback> followers = flights.Finish("k");
  ASSERT_EQ(followers.size(), 2u);
  for (auto& cb : followers) cb(42);
  EXPECT_EQ(delivered, (std::vector<int>{42, 42}));
}

TEST(SingleFlightTest, DistinctKeysAreIndependentFlights) {
  SingleFlight<Callback> flights;
  Callback a = [](int) {};
  Callback b = [](int) {};
  EXPECT_TRUE(flights.LeadOrJoin("a", &a));
  EXPECT_TRUE(flights.LeadOrJoin("b", &b));
  EXPECT_TRUE(flights.Finish("a").empty());
  EXPECT_TRUE(flights.Finish("b").empty());
}

TEST(SingleFlightTest, NextCallerAfterFinishLeadsAgain) {
  SingleFlight<Callback> flights;
  Callback first = [](int) {};
  ASSERT_TRUE(flights.LeadOrJoin("k", &first));
  flights.Finish("k");
  Callback second = [](int) {};
  EXPECT_TRUE(flights.LeadOrJoin("k", &second));
}

TEST(SingleFlightTest, ConcurrentCallersProduceOneLeaderAndLoseNoCallback) {
  // N threads race LeadOrJoin on one key; each leader "computes", finishes,
  // and delivers to every parked follower. Every one of the N callbacks must
  // run exactly once, and leaders + coalesced must account for all N.
  constexpr int kThreads = 8;
  constexpr int kCallers = 400;
  SingleFlight<Callback> flights;
  std::atomic<int> leaders{0};
  std::atomic<int> deliveries{0};
  std::atomic<int> submitted{0};
  std::mutex mu;
  std::condition_variable cv;
  int remaining = kCallers;

  {
    exec::ThreadPool pool(kThreads);
    for (int i = 0; i < kCallers; ++i) {
      pool.Submit([&] {
        Callback done = [&deliveries](int) {
          deliveries.fetch_add(1, std::memory_order_relaxed);
        };
        if (flights.LeadOrJoin("hot", &done)) {
          leaders.fetch_add(1, std::memory_order_relaxed);
          // "Compute", then Finish and deliver to self + followers — the
          // same sequence the request router runs.
          std::vector<Callback> followers = flights.Finish("hot");
          done(1);
          for (auto& cb : followers) cb(1);
        }
        submitted.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu);
        --remaining;
        cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&remaining] { return remaining == 0; });
  }

  EXPECT_EQ(submitted.load(), kCallers);
  EXPECT_EQ(deliveries.load(), kCallers);
  EXPECT_GE(leaders.load(), 1);
  EXPECT_EQ(flights.coalesced(), kCallers - leaders.load());
  // No flight may be left open.
  EXPECT_TRUE(flights.Finish("hot").empty());
}

}  // namespace
}  // namespace tgks::cache
