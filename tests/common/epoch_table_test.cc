// FlatEpochMap / FlatEpochSet: the per-node scratch tables of the search
// hot path. Key properties under test:
//
//   * map semantics (Find/Activate) against std::unordered_map, including
//     across growth and across O(1) epoch Clear()s,
//   * Activate's reset callback fires exactly once per (key, epoch) and
//     values keep their heap capacity across epochs (the zero-allocation
//     contract),
//   * epoch counter wraparound falls back to a full stamp wipe rather than
//     resurrecting stale entries,
//   * set semantics (Test/TestAndSet) against std::unordered_set.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/epoch_table.h"
#include "common/random.h"

namespace tgks::common {
namespace {

TEST(FlatEpochMapTest, FindOnEmptyReturnsNull) {
  FlatEpochMap<int> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(0), nullptr);
  EXPECT_EQ(map.Find(12345), nullptr);
}

TEST(FlatEpochMapTest, ActivateInsertsAndFinds) {
  FlatEpochMap<int> map;
  int& v = map.Activate(7, [](int& stale) { stale = 0; });
  v = 42;
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 42);
  EXPECT_EQ(map.Find(8), nullptr);
  EXPECT_EQ(map.size(), 1u);

  // Re-activating an existing key must NOT reset it.
  int& again = map.Activate(7, [](int& stale) { stale = -1; });
  EXPECT_EQ(again, 42);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatEpochMapTest, ClearIsLogicalAndResetRunsOncePerEpoch) {
  FlatEpochMap<int> map;
  map.Activate(3, [](int& stale) { stale = 0; }) = 30;
  map.Activate(4, [](int& stale) { stale = 0; }) = 40;
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(3), nullptr);
  EXPECT_EQ(map.Find(4), nullptr);

  // The stale slot still holds the old value until the reset runs; the
  // callback must see it (that is how vector/IntervalSet values keep their
  // capacity) and must run exactly once for the new epoch.
  int resets = 0;
  int& v = map.Activate(3, [&resets](int& stale) {
    EXPECT_EQ(stale, 30);  // Same slot: capacity-preserving recycling.
    stale = 0;
    ++resets;
  });
  EXPECT_EQ(v, 0);
  map.Activate(3, [&resets](int& stale) {
    stale = -1;
    ++resets;
  });
  EXPECT_EQ(resets, 1);
  EXPECT_EQ(*map.Find(3), 0);
}

TEST(FlatEpochMapTest, ValuesKeepHeapCapacityAcrossEpochs) {
  FlatEpochMap<std::vector<int>> map;
  auto clear_vec = [](std::vector<int>& stale) { stale.clear(); };
  std::vector<int>& v = map.Activate(11, clear_vec);
  for (int i = 0; i < 100; ++i) v.push_back(i);
  const size_t grown = v.capacity();
  ASSERT_GE(grown, 100u);

  map.Clear();
  std::vector<int>& recycled = map.Activate(11, clear_vec);
  EXPECT_TRUE(recycled.empty());
  EXPECT_EQ(recycled.capacity(), grown);  // clear() kept the buffer.
}

TEST(FlatEpochMapTest, GrowthRehashKeepsAllLiveEntries) {
  FlatEpochMap<uint32_t> map;
  // Push far past the initial capacity (16 slots, 7/8 load factor) so the
  // table rehashes several times.
  for (uint32_t k = 0; k < 1000; ++k) {
    map.Activate(k * 7919, [](uint32_t& stale) { stale = 0; }) = k;
  }
  EXPECT_EQ(map.size(), 1000u);
  for (uint32_t k = 0; k < 1000; ++k) {
    const uint32_t* v = map.Find(k * 7919);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k);
  }
  EXPECT_EQ(map.Find(3), nullptr);
}

TEST(FlatEpochMapTest, DifferentialAgainstUnorderedMap) {
  Rng rng(20260805);
  FlatEpochMap<int64_t> map;
  std::unordered_map<uint32_t, int64_t> model;
  for (int round = 0; round < 20; ++round) {
    for (int op = 0; op < 500; ++op) {
      const uint32_t key = static_cast<uint32_t>(rng.Uniform(200));
      if (rng.Bernoulli(0.5)) {
        const int64_t value = static_cast<int64_t>(rng.Uniform(1000));
        map.Activate(key, [](int64_t& stale) { stale = 0; }) = value;
        model[key] = value;
      } else {
        const int64_t* found = map.Find(key);
        const auto it = model.find(key);
        ASSERT_EQ(found != nullptr, it != model.end())
            << "round " << round << " key " << key;
        if (found != nullptr) EXPECT_EQ(*found, it->second);
      }
    }
    ASSERT_EQ(map.size(), model.size());
    map.Clear();
    model.clear();
  }
}

TEST(FlatEpochMapTest, EpochWraparoundDoesNotResurrectEntries) {
  FlatEpochMap<int> map;
  map.Activate(5, [](int& stale) { stale = 0; }) = 55;
  // Clear ~2^32 times is infeasible; instead run enough Clears to prove the
  // epoch bump stays logical, then force the wrap path via many clears on a
  // table whose correctness we re-check each time at a sampled cadence.
  for (int i = 0; i < 10000; ++i) {
    map.Clear();
    ASSERT_EQ(map.Find(5), nullptr) << "clear " << i;
    map.Activate(5, [](int& stale) { stale = 0; }) = i;
    ASSERT_EQ(*map.Find(5), i);
  }
}

TEST(FlatEpochSetTest, TestAndSetSemantics) {
  FlatEpochSet set;
  EXPECT_FALSE(set.Test(9));
  EXPECT_TRUE(set.TestAndSet(9));   // Newly inserted.
  EXPECT_FALSE(set.TestAndSet(9));  // Already present.
  EXPECT_TRUE(set.Test(9));
  set.Clear();
  EXPECT_FALSE(set.Test(9));
  EXPECT_TRUE(set.TestAndSet(9));
}

TEST(FlatEpochSetTest, DifferentialAgainstUnorderedSet) {
  Rng rng(4242);
  FlatEpochSet set;
  std::unordered_set<uint32_t> model;
  for (int round = 0; round < 10; ++round) {
    for (int op = 0; op < 2000; ++op) {
      const uint32_t key = static_cast<uint32_t>(rng.Uniform(500));
      if (rng.Bernoulli(0.5)) {
        EXPECT_EQ(set.TestAndSet(key), model.insert(key).second);
      } else {
        EXPECT_EQ(set.Test(key), model.count(key) > 0);
      }
    }
    EXPECT_EQ(set.size(), model.size());
    set.Clear();
    model.clear();
  }
}

}  // namespace
}  // namespace tgks::common
