#include "common/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace tgks {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliRespectsProbabilityRoughly) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ZipfSkewsTowardSmallRanks) {
  Rng rng(13);
  const uint64_t n = 1000;
  int head = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    const uint64_t v = rng.Zipf(n, 1.0);
    EXPECT_LT(v, n);
    head += (v < 10);
  }
  // Under Zipf(1.0) the top-10 ranks carry far more than the uniform share
  // (which would be 1%).
  EXPECT_GT(head, samples / 20);
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(13);
  EXPECT_EQ(rng.Zipf(1, 1.2), 0u);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(17);
  for (uint64_t k : {0ull, 1ull, 5ull, 50ull, 100ull}) {
    auto sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<uint64_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), k);
    for (uint64_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, SampleFullUniverseIsPermutation) {
  Rng rng(19);
  auto sample = rng.SampleWithoutReplacement(64, 64);
  std::sort(sample.begin(), sample.end());
  for (uint64_t i = 0; i < 64; ++i) EXPECT_EQ(sample[i], i);
}

}  // namespace
}  // namespace tgks
