// ScratchPool: thread-local recycling of per-query scratch state.

#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/scratch_pool.h"

namespace tgks::common {
namespace {

struct Payload {
  std::vector<int> data;
};

using TestPool = ScratchPool<Payload, 2>;

TEST(ScratchPoolTest, ReleaseThenAcquireReusesObjectWithCapacity) {
  TestPool::TrimThreadCache();
  Payload* raw = nullptr;
  size_t grown = 0;
  {
    TestPool::Handle h = TestPool::Acquire();
    raw = h.get();
    h->data.assign(1000, 7);
    grown = h->data.capacity();
  }  // Parked, not deleted.
  TestPool::Handle again = TestPool::Acquire();
  EXPECT_EQ(again.get(), raw);
  // The pool hands the object back as-is; capacity (and content) survive.
  // Callers epoch-reset state themselves.
  EXPECT_EQ(again->data.capacity(), grown);
}

TEST(ScratchPoolTest, LifoReuseOrder) {
  TestPool::TrimThreadCache();
  TestPool::Handle a = TestPool::Acquire();
  TestPool::Handle b = TestPool::Acquire();
  Payload* pa = a.get();
  Payload* pb = b.get();
  a.reset();  // Free list: [a]
  b.reset();  // Free list: [a, b]
  EXPECT_EQ(TestPool::Acquire().get(), pb);  // Most-recently-released first.
  // That acquire's handle died immediately, putting b back on top.
  EXPECT_EQ(TestPool::Acquire().get(), pb);
  (void)pa;
}

TEST(ScratchPoolTest, FreeListIsBoundedByMaxFree) {
  TestPool::TrimThreadCache();
  const TestPool::Stats before = TestPool::ThreadLocalStats();
  {
    TestPool::Handle h1 = TestPool::Acquire();
    TestPool::Handle h2 = TestPool::Acquire();
    TestPool::Handle h3 = TestPool::Acquire();
  }  // MaxFree = 2: two park, one is deleted.
  {
    TestPool::Handle h1 = TestPool::Acquire();
    TestPool::Handle h2 = TestPool::Acquire();
    TestPool::Handle h3 = TestPool::Acquire();
  }
  const TestPool::Stats after = TestPool::ThreadLocalStats();
  EXPECT_EQ(after.created - before.created, 4u);  // 3 cold + 1 over-bound.
  EXPECT_EQ(after.reused - before.reused, 2u);
}

TEST(ScratchPoolTest, PoolsAreThreadLocal) {
  TestPool::TrimThreadCache();
  Payload* main_obj = nullptr;
  {
    TestPool::Handle h = TestPool::Acquire();
    main_obj = h.get();
  }
  Payload* other_obj = nullptr;
  std::thread worker([&] {
    TestPool::Handle h = TestPool::Acquire();
    other_obj = h.get();  // Fresh: the main thread's free list is invisible.
  });
  worker.join();
  EXPECT_NE(other_obj, nullptr);
  EXPECT_NE(other_obj, main_obj);
  // Main thread's parked object is still available here.
  EXPECT_EQ(TestPool::Acquire().get(), main_obj);
}

}  // namespace
}  // namespace tgks::common
