#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace tgks {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "invalid-argument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "not-found");
  EXPECT_EQ(StatusCodeName(StatusCode::kAlreadyExists), "already-exists");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "out-of-range");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "corruption");
  EXPECT_EQ(StatusCodeName(StatusCode::kIOError), "io-error");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnimplemented), "unimplemented");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

Status FailWhenNegative(int v) {
  if (v < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chain(int v) {
  TGKS_RETURN_IF_ERROR(FailWhenNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("no node");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> HalveEven(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Status UseAssignOrReturn(int v, int* out) {
  TGKS_ASSIGN_OR_RETURN(*out, HalveEven(v));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseAssignOrReturn(7, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tgks
