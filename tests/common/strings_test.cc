#include "common/strings.h"

#include <gtest/gtest.h>

namespace tgks {
namespace {

TEST(StringsTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("Graph-Search 2016"), "graph-search 2016");
  EXPECT_EQ(AsciiToLower(""), "");
  EXPECT_EQ(AsciiToLower("ABC"), "abc");
}

TEST(StringsTest, TokenizeWordsSplitsOnNonAlnum) {
  const auto tokens = TokenizeWords("Graph-Search, 2016!");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "graph");
  EXPECT_EQ(tokens[1], "search");
  EXPECT_EQ(tokens[2], "2016");
}

TEST(StringsTest, TokenizeWordsEmptyAndPunctuationOnly) {
  EXPECT_TRUE(TokenizeWords("").empty());
  EXPECT_TRUE(TokenizeWords("--- !!").empty());
}

TEST(StringsTest, TokenizeWordsSingleToken) {
  const auto tokens = TokenizeWords("Microsoft");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "microsoft");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, JoinRoundTripsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(StringsTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("4x", &v));
  EXPECT_FALSE(ParseInt64("x4", &v));
}

TEST(StringsTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("1.5.2", &v));
}

}  // namespace
}  // namespace tgks
