#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "datagen/dblp_generator.h"
#include "datagen/query_generator.h"
#include "datagen/replicate.h"
#include "datagen/social_generator.h"
#include "datagen/workflow_generator.h"
#include "graph/graph_stats.h"
#include "graph/inverted_index.h"

namespace tgks::datagen {
namespace {

using graph::NodeId;
using temporal::TimePoint;

DblpParams SmallDblp() {
  DblpParams p;
  p.num_papers = 500;
  p.num_authors = 200;
  p.num_venues = 10;
  p.vocab_size = 150;
  p.seed = 11;
  return p;
}

TEST(DblpGeneratorTest, ShapesAndCounts) {
  auto d = GenerateDblp(SmallDblp());
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->papers.size(), 500u);
  EXPECT_EQ(d->authors.size(), 200u);
  EXPECT_EQ(d->venues.size(), 10u);
  EXPECT_EQ(d->graph.timeline_length(), 53);
  EXPECT_EQ(d->graph.num_nodes(), 1 + 10 + 200 + 500);
}

TEST(DblpGeneratorTest, AppendOnlyValidity) {
  auto d = GenerateDblp(SmallDblp());
  ASSERT_TRUE(d.ok());
  const TimePoint last = d->graph.timeline_length() - 1;
  for (NodeId n = 0; n < d->graph.num_nodes(); ++n) {
    const auto& validity = d->graph.node(n).validity;
    ASSERT_EQ(validity.intervals().size(), 1u) << n;
    EXPECT_EQ(validity.End(), last) << n;
  }
  for (graph::EdgeId e = 0; e < d->graph.num_edges(); ++e) {
    EXPECT_EQ(d->graph.edge(e).validity.End(), last);
  }
}

TEST(DblpGeneratorTest, ValidityHorizonBoundsPaperLifetimes) {
  // validity_horizon = H truncates each paper (and its incident edges) to
  // [year, year + H] — the bounded, non-suffix temporal shape the
  // append-only default can never produce (the dblp-bounded bench suite).
  DblpParams p = SmallDblp();
  p.validity_horizon = 8;
  auto bounded = GenerateDblp(p);
  ASSERT_TRUE(bounded.ok()) << bounded.status();
  auto open = GenerateDblp(SmallDblp());
  ASSERT_TRUE(open.ok());

  // Same entities; citation edges whose papers' bounded lifetimes no
  // longer intersect are dropped, so the edge count can only shrink.
  EXPECT_EQ(bounded->graph.num_nodes(), open->graph.num_nodes());
  EXPECT_LT(bounded->graph.num_edges(), open->graph.num_edges());

  const TimePoint last = bounded->graph.timeline_length() - 1;
  int truncated = 0;
  for (const NodeId paper : bounded->papers) {
    const auto& validity = bounded->graph.node(paper).validity;
    ASSERT_EQ(validity.intervals().size(), 1u) << paper;
    const TimePoint begin = validity.Start(), end = validity.End();
    EXPECT_LE(end - begin, p.validity_horizon) << paper;
    EXPECT_EQ(end, std::min(last, begin + p.validity_horizon)) << paper;
    if (end < last) ++truncated;
    // Every incident edge stays inside the paper's life (kStrict holds).
    for (const graph::EdgeId e : bounded->graph.OutEdges(paper)) {
      EXPECT_TRUE(
          validity.Subsumes(bounded->graph.edge(e).validity))
          << "edge " << e << " outlives paper " << paper;
    }
  }
  // The horizon must actually bite: most papers die before the last
  // instant (timeline 53, horizon 8).
  EXPECT_GT(truncated, static_cast<int>(bounded->papers.size()) / 2);

  // Authors and venues keep their open-ended lives.
  for (const NodeId author : bounded->authors) {
    EXPECT_EQ(bounded->graph.node(author).validity.End(), last) << author;
  }
  for (const NodeId venue : bounded->venues) {
    EXPECT_EQ(bounded->graph.node(venue).validity.End(), last) << venue;
  }

  // Negative horizon is rejected.
  DblpParams bad = SmallDblp();
  bad.validity_horizon = -1;
  EXPECT_FALSE(GenerateDblp(bad).ok());
}

TEST(DblpGeneratorTest, FullEdgeConnectivity) {
  // Append-only validity => any two adjacent edges share the final instant.
  auto d = GenerateDblp(SmallDblp());
  ASSERT_TRUE(d.ok());
  Rng rng(3);
  EXPECT_DOUBLE_EQ(graph::MeasureEdgeConnectivity(d->graph, &rng, 5000), 1.0);
}

TEST(DblpGeneratorTest, RootReachesEverything) {
  auto d = GenerateDblp(SmallDblp());
  ASSERT_TRUE(d.ok());
  // BFS over forward edges from the DBLP root.
  std::vector<bool> seen(static_cast<size_t>(d->graph.num_nodes()), false);
  std::vector<NodeId> frontier = {d->root};
  seen[static_cast<size_t>(d->root)] = true;
  size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId n = frontier.back();
    frontier.pop_back();
    for (const auto e : d->graph.OutEdges(n)) {
      const NodeId next = d->graph.edge(e).dst;
      if (!seen[static_cast<size_t>(next)]) {
        seen[static_cast<size_t>(next)] = true;
        ++reached;
        frontier.push_back(next);
      }
    }
  }
  EXPECT_EQ(reached, static_cast<size_t>(d->graph.num_nodes()));
}

TEST(DblpGeneratorTest, CitationsPointBackwardInTime) {
  auto d = GenerateDblp(SmallDblp());
  ASSERT_TRUE(d.ok());
  std::unordered_set<NodeId> papers(d->papers.begin(), d->papers.end());
  for (graph::EdgeId e = 0; e < d->graph.num_edges(); ++e) {
    const auto& edge = d->graph.edge(e);
    if (papers.count(edge.src) && papers.count(edge.dst)) {
      EXPECT_GE(d->graph.node(edge.src).validity.Start(),
                d->graph.node(edge.dst).validity.Start());
    }
  }
}

TEST(DblpGeneratorTest, DeterministicInSeed) {
  auto a = GenerateDblp(SmallDblp());
  auto b = GenerateDblp(SmallDblp());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->graph.num_nodes(), b->graph.num_nodes());
  ASSERT_EQ(a->graph.num_edges(), b->graph.num_edges());
  for (NodeId n = 0; n < a->graph.num_nodes(); ++n) {
    EXPECT_EQ(a->graph.node(n).label, b->graph.node(n).label);
  }
  DblpParams other = SmallDblp();
  other.seed = 99;
  auto c = GenerateDblp(other);
  ASSERT_TRUE(c.ok());
  bool any_diff = false;
  for (NodeId n = 0; n < std::min(a->graph.num_nodes(), c->graph.num_nodes());
       ++n) {
    any_diff |= (a->graph.node(n).label != c->graph.node(n).label);
  }
  EXPECT_TRUE(any_diff);
}

TEST(DblpGeneratorTest, RejectsBadParams) {
  DblpParams p = SmallDblp();
  p.num_papers = 0;
  EXPECT_FALSE(GenerateDblp(p).ok());
  p = SmallDblp();
  p.timeline_length = 1;
  EXPECT_FALSE(GenerateDblp(p).ok());
  p = SmallDblp();
  p.title_words_max = 0;
  EXPECT_FALSE(GenerateDblp(p).ok());
}

SocialParams SmallSocial(double connectivity) {
  SocialParams p;
  p.num_nodes = 2000;
  p.edges_per_node = 2;
  p.edge_connectivity = connectivity;
  p.seed = 5;
  return p;
}

TEST(SocialGeneratorTest, HitsTargetConnectivity) {
  for (const double target : {0.3, 0.5, 0.7, 0.9}) {
    auto d = GenerateSocial(SmallSocial(target));
    ASSERT_TRUE(d.ok()) << d.status();
    EXPECT_NEAR(d->measured_connectivity, target, 0.07) << target;
  }
}

TEST(SocialGeneratorTest, NodeValidityIsUnionOfEdges) {
  auto d = GenerateSocial(SmallSocial(0.7));
  ASSERT_TRUE(d.ok());
  const auto& g = d->graph;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    EXPECT_TRUE(g.node(edge.src).validity.Subsumes(edge.validity));
    EXPECT_TRUE(g.node(edge.dst).validity.Subsumes(edge.validity));
  }
}

TEST(SocialGeneratorTest, MultiIntervalValidityPresent) {
  auto d = GenerateSocial(SmallSocial(0.5));
  ASSERT_TRUE(d.ok());
  int multi = 0;
  for (NodeId n = 0; n < d->graph.num_nodes(); ++n) {
    multi += d->graph.node(n).validity.intervals().size() > 1;
  }
  EXPECT_GT(multi, d->graph.num_nodes() / 20);
}

TEST(SocialGeneratorTest, RejectsBadParams) {
  SocialParams p = SmallSocial(0.7);
  p.edge_connectivity = 0.0;
  EXPECT_FALSE(GenerateSocial(p).ok());
  p = SmallSocial(0.7);
  p.num_nodes = 1;
  EXPECT_FALSE(GenerateSocial(p).ok());
}

WorkflowParams SmallWorkflows() {
  WorkflowParams p;
  p.num_workflows = 40;
  p.num_entities = 80;
  p.vocab_size = 120;
  p.seed = 13;
  return p;
}

TEST(WorkflowGeneratorTest, ShapesAndTypes) {
  auto d = GenerateWorkflows(SmallWorkflows());
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->workflows.size(), 40u);
  EXPECT_EQ(d->entities.size(), 80u);
  EXPECT_GE(d->subworkflows.size(), d->workflows.size() * 2);  // >= 2 versions.
  EXPECT_GT(d->tasks.size(), d->subworkflows.size());
  const graph::InvertedIndex index(d->graph);
  EXPECT_EQ(index.Lookup("workflow").size(), d->workflows.size());
  EXPECT_EQ(index.Lookup("subworkflow").size(), d->subworkflows.size());
  EXPECT_EQ(index.Lookup("task").size(), d->tasks.size());
  EXPECT_EQ(index.Lookup("entity").size(), d->entities.size());
}

TEST(WorkflowGeneratorTest, DeletionsAreCommon) {
  // Unlike DBLP, many elements must die before the final instant.
  auto d = GenerateWorkflows(SmallWorkflows());
  ASSERT_TRUE(d.ok());
  const TimePoint final_instant = d->graph.timeline_length() - 1;
  int dead_subworkflows = 0;
  for (const NodeId n : d->subworkflows) {
    dead_subworkflows += d->graph.node(n).validity.End() < final_instant;
  }
  // Every non-final version of a multi-version workflow dies.
  EXPECT_GT(dead_subworkflows, static_cast<int>(d->workflows.size()) / 2);
  Rng rng(5);
  EXPECT_LT(graph::MeasureEdgeConnectivity(d->graph, &rng, 5000), 1.0);
}

TEST(WorkflowGeneratorTest, VersionSpansPartitionWorkflowLifetime) {
  auto d = GenerateWorkflows(SmallWorkflows());
  ASSERT_TRUE(d.ok());
  // For each workflow node, the union of its subworkflow children's
  // validity must equal the workflow's validity.
  for (const NodeId w : d->workflows) {
    temporal::IntervalSet versions_union;
    for (const auto e : d->graph.OutEdges(w)) {
      const NodeId child = d->graph.edge(e).dst;
      const auto& label = d->graph.node(child).label;
      if (label.rfind("subworkflow", 0) == 0) {
        versions_union = versions_union.Union(d->graph.node(child).validity);
      }
    }
    EXPECT_EQ(versions_union, d->graph.node(w).validity)
        << d->graph.node(w).label;
  }
}

TEST(WorkflowGeneratorTest, RejectsBadParams) {
  WorkflowParams p = SmallWorkflows();
  p.num_workflows = 0;
  EXPECT_FALSE(GenerateWorkflows(p).ok());
  p = SmallWorkflows();
  p.timeline_length = 2;
  EXPECT_FALSE(GenerateWorkflows(p).ok());
  p = SmallWorkflows();
  p.versions_max = 0;
  EXPECT_FALSE(GenerateWorkflows(p).ok());
}

TEST(QueryGeneratorTest, DblpWorkloadShape) {
  auto d = GenerateDblp(SmallDblp());
  ASSERT_TRUE(d.ok());
  QueryWorkloadParams params;
  params.num_queries = 50;
  const auto workload = MakeDblpWorkload(*d, params);
  ASSERT_EQ(workload.size(), 50u);
  const graph::InvertedIndex index(d->graph);
  int with_matches = 0;
  for (const auto& wq : workload) {
    EXPECT_GE(wq.query.keywords.size(), 2u);
    EXPECT_LE(wq.query.keywords.size(), 4u);
    EXPECT_TRUE(wq.matches.empty());
    EXPECT_TRUE(wq.query.Validate().ok());
    for (const auto& kw : wq.query.keywords) {
      with_matches += !index.Lookup(kw).empty();
    }
  }
  EXPECT_GT(with_matches, 0);
}

TEST(QueryGeneratorTest, PredicateAttached) {
  auto d = GenerateDblp(SmallDblp());
  ASSERT_TRUE(d.ok());
  QueryWorkloadParams params;
  params.num_queries = 20;
  params.predicate = search::PredicateOp::kOverlaps;
  const auto workload = MakeDblpWorkload(*d, params);
  for (const auto& wq : workload) {
    ASSERT_NE(wq.query.predicate, nullptr);
    EXPECT_NE(wq.query.predicate->ToString().find("overlaps"),
              std::string::npos);
  }
}

TEST(QueryGeneratorTest, MatchSetWorkloadRespectsBounds) {
  auto d = GenerateSocial(SmallSocial(0.7));
  ASSERT_TRUE(d.ok());
  QueryWorkloadParams params;
  params.num_queries = 20;
  MatchSetParams match_params;
  match_params.matches_min = 20;
  match_params.matches_max = 100;
  const auto workload = MakeMatchSetWorkload(d->graph, params, match_params);
  for (const auto& wq : workload) {
    ASSERT_EQ(wq.matches.size(), wq.query.keywords.size());
    for (const auto& set : wq.matches) {
      EXPECT_GE(set.size(), 20u);
      EXPECT_LE(set.size(), 100u);
      std::set<NodeId> uniq(set.begin(), set.end());
      EXPECT_EQ(uniq.size(), set.size());
      for (const NodeId n : set) {
        EXPECT_GE(n, 0);
        EXPECT_LT(n, d->graph.num_nodes());
      }
    }
  }
}

TEST(ReplicateTest, CopiesAndBridges) {
  auto d = GenerateSocial(SmallSocial(0.7));
  ASSERT_TRUE(d.ok());
  Rng rng(9);
  auto big = ReplicateGraph(d->graph, 3, 50, &rng);
  ASSERT_TRUE(big.ok()) << big.status();
  EXPECT_EQ(big->num_nodes(), d->graph.num_nodes() * 3);
  // 3 copies of edges plus 50 bidirectional bridges.
  EXPECT_EQ(big->num_edges(), d->graph.num_edges() * 3 + 100);
  // Copy 0 preserves labels and validity.
  for (NodeId n = 0; n < d->graph.num_nodes(); n += 97) {
    EXPECT_EQ(big->node(n).label, d->graph.node(n).label);
    EXPECT_EQ(big->node(n).validity, d->graph.node(n).validity);
  }
}

TEST(ReplicateTest, SingleCopyIdentity) {
  auto d = GenerateSocial(SmallSocial(0.7));
  ASSERT_TRUE(d.ok());
  Rng rng(9);
  auto same = ReplicateGraph(d->graph, 1, 0, &rng);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same->num_nodes(), d->graph.num_nodes());
  EXPECT_EQ(same->num_edges(), d->graph.num_edges());
}

TEST(ReplicateTest, RejectsBadParams) {
  auto d = GenerateSocial(SmallSocial(0.7));
  ASSERT_TRUE(d.ok());
  Rng rng(9);
  EXPECT_FALSE(ReplicateGraph(d->graph, 0, 0, &rng).ok());
  EXPECT_FALSE(ReplicateGraph(d->graph, 1, 5, &rng).ok());
}

}  // namespace
}  // namespace tgks::datagen
