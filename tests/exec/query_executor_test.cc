// QueryExecutor: concurrent batches must be bit-identical to sequential
// execution, and deadlines / cancellation must stop queries cleanly without
// corrupting results or counters.

#include "exec/query_executor.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "graph/inverted_index.h"
#include "search/query_parser.h"
#include "search/ranking.h"
#include "testutil/paper_graphs.h"

namespace tgks::exec {
namespace {

using graph::GraphBuilder;
using graph::InvertedIndex;
using graph::NodeId;
using graph::TemporalGraph;
using temporal::IntervalSet;

search::Query MustParse(const std::string& text) {
  auto q = search::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << text << ": " << q.status();
  return std::move(q).value();
}

// A long "left ... right" chain: expensive to search (the two frontiers
// must each cross ~n/2 hops to meet), so deadlines and cancellation
// reliably fire mid-expansion.
TemporalGraph MakeChainGraph(int n) {
  GraphBuilder b(4);
  const IntervalSet always{{0, 3}};
  const NodeId head = b.AddNode("left", always);
  NodeId prev = head;
  for (int i = 0; i < n - 2; ++i) {
    const NodeId mid = b.AddNode("mid", always);
    b.AddEdge(prev, mid, always);
    b.AddEdge(mid, prev, always);
    prev = mid;
  }
  const NodeId tail = b.AddNode("right", always);
  b.AddEdge(prev, tail, always);
  b.AddEdge(tail, prev, always);
  return std::move(b.Build()).value();
}

std::vector<BatchQuery> SocialBatch() {
  std::vector<BatchQuery> batch;
  for (int repeat = 0; repeat < 4; ++repeat) {
    for (const char* text :
         {"mary, john", "mary, bob", "bob, ross, john",
          "mary, john rank by ascending order of result start time",
          "mary, bob rank by descending order of duration"}) {
      batch.push_back(BatchQuery{MustParse(text), {}});
    }
  }
  return batch;
}

void ExpectResponsesIdentical(const BatchResponse& a, const BatchResponse& b) {
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (size_t i = 0; i < a.responses.size(); ++i) {
    const auto& ra = a.responses[i];
    const auto& rb = b.responses[i];
    ASSERT_EQ(ra.ok(), rb.ok()) << i;
    if (!ra.ok()) continue;
    ASSERT_EQ(ra->results.size(), rb->results.size()) << i;
    for (size_t j = 0; j < ra->results.size(); ++j) {
      EXPECT_EQ(ra->results[j].Signature(), rb->results[j].Signature());
      EXPECT_EQ(ra->results[j].score, rb->results[j].score);
      EXPECT_EQ(ra->results[j].time, rb->results[j].time);
    }
    // Work counters are deterministic too (wall-clock timings are not).
    EXPECT_EQ(ra->counters.pops, rb->counters.pops) << i;
    EXPECT_EQ(ra->counters.useless_pops, rb->counters.useless_pops) << i;
    EXPECT_EQ(ra->counters.ntds_created, rb->counters.ntds_created) << i;
    EXPECT_EQ(ra->counters.edges_scanned, rb->counters.edges_scanned) << i;
    EXPECT_EQ(ra->counters.subsumption_skips, rb->counters.subsumption_skips)
        << i;
    EXPECT_EQ(ra->counters.subsumption_evictions,
              rb->counters.subsumption_evictions)
        << i;
    EXPECT_EQ(ra->counters.candidates, rb->counters.candidates) << i;
    EXPECT_EQ(ra->counters.results, rb->counters.results) << i;
    EXPECT_EQ(ra->stop_reason, rb->stop_reason) << i;
    EXPECT_EQ(ra->exhausted, rb->exhausted) << i;
  }
}

TEST(QueryExecutorTest, ConcurrentBatchBitIdenticalToSequential) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  const std::vector<BatchQuery> batch = SocialBatch();

  ExecutorOptions sequential;
  sequential.threads = 1;
  sequential.search.k = 0;
  QueryExecutor seq(g, &index, sequential);
  const BatchResponse reference = seq.Run(batch);
  EXPECT_EQ(reference.completed, static_cast<int64_t>(batch.size()));
  EXPECT_EQ(reference.failed, 0);

  for (const int threads : {2, 4, 8}) {
    ExecutorOptions options = sequential;
    options.threads = threads;
    QueryExecutor executor(g, &index, options);
    EXPECT_EQ(executor.threads(), threads);
    const BatchResponse concurrent = executor.Run(batch);
    EXPECT_EQ(concurrent.completed, static_cast<int64_t>(batch.size()));
    ExpectResponsesIdentical(reference, concurrent);
    // Aggregates derive from the same per-query responses.
    EXPECT_EQ(concurrent.totals.pops, reference.totals.pops);
    EXPECT_EQ(concurrent.totals.results, reference.totals.results);
  }
}

TEST(QueryExecutorTest, RepeatedRunsOnOneExecutorAreIdentical) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  ExecutorOptions options;
  options.threads = 4;
  options.search.k = 0;
  QueryExecutor executor(g, &index, options);
  const std::vector<BatchQuery> batch = SocialBatch();
  const BatchResponse first = executor.Run(batch);
  const BatchResponse second = executor.Run(batch);
  ExpectResponsesIdentical(first, second);
}

TEST(QueryExecutorTest, ScratchRecyclingKeepsWorkCountersBitIdentical) {
  // The worker threads recycle pooled iterator scratch (epoch tables, NTD
  // arenas, heaps) between runs. The first run starts cold, later runs reuse
  // warm state whose tables/arenas carry stale previous-query contents —
  // every observable result AND every work counter must be unaffected.
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  ExecutorOptions options;
  options.threads = 2;
  options.search.k = 0;
  QueryExecutor executor(g, &index, options);
  const std::vector<BatchQuery> batch = SocialBatch();
  const BatchResponse cold = executor.Run(batch);
  for (int rerun = 0; rerun < 3; ++rerun) {
    const BatchResponse warm = executor.Run(batch);
    ExpectResponsesIdentical(cold, warm);
  }
}

TEST(QueryExecutorTest, DeadlineFiresWithoutCorruptingCounters) {
  const TemporalGraph g = MakeChainGraph(120000);
  const InvertedIndex index(g);
  ExecutorOptions options;
  options.threads = 2;
  options.deadline_ms = 1;
  options.search.k = 5;
  QueryExecutor executor(g, &index, options);
  std::vector<BatchQuery> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(BatchQuery{MustParse("left, right"), {}});
  }
  const BatchResponse out = executor.Run(batch);
  EXPECT_EQ(out.completed, 4);
  EXPECT_EQ(out.failed, 0);
  EXPECT_EQ(out.deadline_exceeded, 4);
  EXPECT_EQ(out.truncated, 4);
  int64_t pops_sum = 0;
  for (const auto& r : out.responses) {
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->deadline_exceeded);
    EXPECT_TRUE(r->truncated);
    EXPECT_EQ(r->stop_reason, search::StopReason::kDeadline);
    // Sane, uncorrupted state: work happened, results (if any) are sorted
    // and within k.
    EXPECT_GT(r->counters.pops, 0);
    EXPECT_LE(r->counters.results, r->counters.candidates);
    EXPECT_LE(r->results.size(), 5u);
    for (size_t i = 1; i < r->results.size(); ++i) {
      EXPECT_FALSE(
          search::ScoreBetter(r->results[i].score, r->results[i - 1].score));
    }
    pops_sum += r->counters.pops;
  }
  EXPECT_EQ(out.totals.pops, pops_sum);
}

TEST(QueryExecutorTest, CancelStopsInFlightBatch) {
  const TemporalGraph g = MakeChainGraph(200000);
  const InvertedIndex index(g);
  ExecutorOptions options;
  options.threads = 2;
  options.search.k = 0;  // Exhaustive: would take far longer than the cancel.
  QueryExecutor executor(g, &index, options);
  std::vector<BatchQuery> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(BatchQuery{MustParse("left, right"), {}});
  }
  std::thread canceller([&executor] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    executor.Cancel();
  });
  const BatchResponse out = executor.Run(batch);
  canceller.join();
  EXPECT_EQ(out.completed, 4);
  EXPECT_EQ(out.failed, 0);
  EXPECT_GT(out.cancelled, 0);
  for (const auto& r : out.responses) {
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->cancelled || r->exhausted);
  }
  // The token resets for the next batch: a fresh small run completes.
  const TemporalGraph small = testutil::MakeSocialNetworkGraph();
  const InvertedIndex small_index(small);
  QueryExecutor fresh_check(small, &small_index, options);
  const BatchResponse again =
      fresh_check.Run({BatchQuery{MustParse("mary, john"), {}}});
  EXPECT_EQ(again.cancelled, 0);
  EXPECT_EQ(again.completed, 1);
}

TEST(QueryExecutorTest, CallerSuppliedCancelTokenIsHonored) {
  const TemporalGraph g = MakeChainGraph(100000);
  const InvertedIndex index(g);
  ExecutorOptions options;
  options.threads = 2;
  options.search.k = 0;  // Exhaustive: only the token can stop it quickly.
  // The caller wires their own token; the executor's batch token must ride
  // alongside it, not replace it.
  std::atomic<bool> caller_token{true};  // Already set: stop at first pop.
  options.search.cancel = &caller_token;
  QueryExecutor executor(g, &index, options);
  std::vector<BatchQuery> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(BatchQuery{MustParse("left, right"), {}});
  }
  const BatchResponse out = executor.Run(batch);
  EXPECT_EQ(out.completed, 4);
  EXPECT_EQ(out.cancelled, 4);
  for (const auto& r : out.responses) {
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->cancelled);
    EXPECT_EQ(r->stop_reason, search::StopReason::kCancelled);
  }
  // The executor-side token still works with a caller token present.
  caller_token.store(false);
  std::thread canceller([&executor] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    executor.Cancel();
  });
  const BatchResponse again = executor.Run(batch);
  canceller.join();
  EXPECT_EQ(again.completed, 4);
  EXPECT_GT(again.cancelled, 0);
}

TEST(QueryExecutorTest, ConcurrentRunCallsSerializeAndStayCorrect) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  const std::vector<BatchQuery> batch = SocialBatch();

  ExecutorOptions sequential;
  sequential.threads = 1;
  sequential.search.k = 0;
  QueryExecutor seq(g, &index, sequential);
  const BatchResponse reference = seq.Run(batch);

  ExecutorOptions options = sequential;
  options.threads = 4;
  QueryExecutor executor(g, &index, options);
  // Run() is documented as one-batch-at-a-time; concurrent calls must
  // serialize (not interleave in the pool) and each produce the same
  // responses as a sequential run.
  std::vector<BatchResponse> outs(4);
  {
    std::vector<std::thread> callers;
    for (auto& out : outs) {
      callers.emplace_back(
          [&executor, &batch, &out] { out = executor.Run(batch); });
    }
    for (auto& t : callers) t.join();
  }
  for (const BatchResponse& out : outs) {
    EXPECT_EQ(out.completed, static_cast<int64_t>(batch.size()));
    EXPECT_EQ(out.failed, 0);
    ExpectResponsesIdentical(reference, out);
  }
}

TEST(QueryExecutorTest, ExplicitMatchesAndInvalidQueriesInOneBatch) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const InvertedIndex index(g);
  ExecutorOptions options;
  options.threads = 2;
  options.search.k = 0;
  QueryExecutor executor(g, &index, options);

  std::vector<BatchQuery> batch;
  batch.push_back(BatchQuery{MustParse("mary, john"), {}});
  // Explicit match lists (keywords are placeholders).
  batch.push_back(
      BatchQuery{MustParse("a, b"), {{ids.mary}, {ids.john}}});
  // Invalid: match arity != keyword arity -> error response in that slot.
  batch.push_back(BatchQuery{MustParse("a, b"), {{ids.mary}}});

  const BatchResponse out = executor.Run(batch);
  EXPECT_EQ(out.completed, 2);
  EXPECT_EQ(out.failed, 1);
  ASSERT_TRUE(out.responses[0].ok());
  ASSERT_TRUE(out.responses[1].ok());
  EXPECT_FALSE(out.responses[2].ok());
  EXPECT_FALSE(out.responses[0]->results.empty());
  EXPECT_FALSE(out.responses[1]->results.empty());
}

TEST(QueryExecutorTest, RunQueriesConvenienceWrapper) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  ExecutorOptions options;
  options.threads = 2;
  QueryExecutor executor(g, &index, options);
  const BatchResponse out =
      executor.RunQueries({MustParse("mary, john"), MustParse("mary, bob")});
  EXPECT_EQ(out.completed, 2);
  EXPECT_EQ(out.responses.size(), 2u);
  EXPECT_EQ(out.latencies_seconds.size(), 2u);
  EXPECT_GT(out.wall_seconds, 0.0);
  EXPECT_GT(out.QueriesPerSecond(), 0.0);
}

// --- Single-query Submit() (the serving path) -------------------------------

// Helper: submits one query and blocks for its completion.
Result<search::SearchResponse> SubmitAndWait(QueryExecutor* executor,
                                             SingleQuery single,
                                             double* seconds_out = nullptr) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Result<search::SearchResponse> out = Status::Internal("not run");
  executor->Submit(std::move(single),
                   [&](Result<search::SearchResponse> r, double seconds) {
                     std::lock_guard<std::mutex> lock(mu);
                     out = std::move(r);
                     if (seconds_out != nullptr) *seconds_out = seconds;
                     done = true;
                     cv.notify_one();
                   });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&done] { return done; });
  return out;
}

TEST(QueryExecutorTest, SubmitRunsOneQueryAsynchronously) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  ExecutorOptions options;
  options.threads = 2;
  options.search.k = 5;
  QueryExecutor executor(g, &index, options);
  double seconds = -1.0;
  auto r = SubmitAndWait(&executor, SingleQuery{{MustParse("mary, john"), {}}},
                         &seconds);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->results.empty());
  EXPECT_GE(seconds, 0.0);
  EXPECT_EQ(executor.inflight_singles(), 0);
}

TEST(QueryExecutorTest, SubmitHonorsPerRequestDeadline) {
  const TemporalGraph g = MakeChainGraph(120000);
  const InvertedIndex index(g);
  ExecutorOptions options;
  options.threads = 2;
  options.search.k = 5;
  QueryExecutor executor(g, &index, options);
  SingleQuery single{{MustParse("left, right"), {}}};
  single.deadline_ms = 1;
  auto r = SubmitAndWait(&executor, std::move(single));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->deadline_exceeded);
  EXPECT_EQ(r->stop_reason, search::StopReason::kDeadline);
}

TEST(QueryExecutorTest, SubmitHonorsPerRequestCancelToken) {
  const TemporalGraph g = MakeChainGraph(100000);
  const InvertedIndex index(g);
  ExecutorOptions options;
  options.threads = 2;
  options.search.k = 0;  // Exhaustive: only the token can stop it quickly.
  QueryExecutor executor(g, &index, options);
  std::atomic<bool> token{true};  // Pre-set: stop at the first pop boundary.
  SingleQuery single{{MustParse("left, right"), {}}};
  single.cancel = &token;
  auto r = SubmitAndWait(&executor, std::move(single));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->cancelled);
  EXPECT_EQ(r->stop_reason, search::StopReason::kCancelled);
}

TEST(QueryExecutorTest, SubmitComposesWithPresetExtraCancel) {
  // A server-wide shutdown token preset in the base options stops submitted
  // queries even when they carry no per-request token.
  const TemporalGraph g = MakeChainGraph(100000);
  const InvertedIndex index(g);
  std::atomic<bool> shutdown{true};
  ExecutorOptions options;
  options.threads = 2;
  options.search.k = 0;
  options.search.extra_cancel = &shutdown;
  QueryExecutor executor(g, &index, options);
  auto r = SubmitAndWait(&executor, SingleQuery{{MustParse("left, right"), {}}});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->cancelled);
  EXPECT_EQ(r->stop_reason, search::StopReason::kCancelled);
}

TEST(QueryExecutorTest, SubmitsInterleaveWithBatchesSafely) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  ExecutorOptions options;
  options.threads = 2;
  options.search.k = 5;
  QueryExecutor executor(g, &index, options);
  std::atomic<int> completions{0};
  constexpr int kSingles = 16;
  for (int i = 0; i < kSingles; ++i) {
    executor.Submit(SingleQuery{{MustParse("mary, john"), {}}},
                    [&completions](Result<search::SearchResponse> r, double) {
                      EXPECT_TRUE(r.ok());
                      completions.fetch_add(1);
                    });
  }
  const BatchResponse batch = executor.Run(SocialBatch());
  EXPECT_EQ(batch.failed, 0);
  // Destruction drains the pool, so by then every callback has run; spin
  // briefly for the counter to settle before asserting.
  for (int spin = 0;
       spin < 1000 &&
       (completions.load() < kSingles || executor.inflight_singles() > 0);
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(completions.load(), kSingles);
  EXPECT_EQ(executor.inflight_singles(), 0);
}

TEST(LatencySummaryTest, NearestRankPercentiles) {
  std::vector<double> latencies;
  for (int ms = 1; ms <= 100; ++ms) {
    latencies.push_back(static_cast<double>(ms) / 1000.0);
  }
  const LatencySummary s = SummarizeLatencies(latencies);
  EXPECT_DOUBLE_EQ(s.p50_ms, 50.0);
  EXPECT_DOUBLE_EQ(s.p90_ms, 90.0);
  EXPECT_DOUBLE_EQ(s.p99_ms, 99.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 100.0);
  EXPECT_NEAR(s.mean_ms, 50.5, 1e-9);
  const LatencySummary empty = SummarizeLatencies({});
  EXPECT_EQ(empty.p50_ms, 0.0);
  EXPECT_EQ(empty.max_ms, 0.0);
}

}  // namespace
}  // namespace tgks::exec
