#include "exec/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include <gtest/gtest.h>

namespace tgks::exec {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskBeforeDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // Destructor drains the queue and joins.
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
  std::atomic<int> count{0};
  zero.Submit([&count] { ++count; });
}

TEST(ThreadPoolTest, TasksRunConcurrentlyAcrossWorkers) {
  // Two tasks that each wait for the other prove two workers run at once;
  // a single-threaded pool would deadlock here (guarded by the timeout-free
  // rendezvous being reachable only with >= 2 threads).
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  auto rendezvous = [&] {
    std::unique_lock<std::mutex> lock(mu);
    ++arrived;
    cv.notify_all();
    cv.wait(lock, [&] { return arrived == 2; });
  };
  pool.Submit(rendezvous);
  pool.Submit(rendezvous);
  std::unique_lock<std::mutex> lock(mu);
  EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return arrived == 2; }));
}

}  // namespace
}  // namespace tgks::exec
