// Golden-file end-to-end tests: load a .tgf graph, run every query in the
// sibling .queries file through the full engine, render the ranked result
// trees deterministically, and compare against the checked-in .expected
// transcript.
//
// Any intentional behavior change regenerates the transcripts with
//
//   TGKS_UPDATE_GOLDEN=1 ctest -R GoldenE2E
//
// and the diff of the .expected files IS the review artifact.
//
// The rendering deliberately excludes wall-clock, counters, and stats so
// the transcripts are byte-identical across machines, sanitizers, and
// TGKS_NO_STATS builds.

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/inverted_index.h"
#include "graph/serialization.h"
#include "graph/temporal_graph.h"
#include "search/query_parser.h"
#include "search/search_engine.h"

namespace tgks {
namespace {

using graph::TemporalGraph;

std::string GoldenPath(const std::string& file) {
  return std::string(TGKS_GOLDEN_DIR) + "/" + file;
}

std::vector<std::string> LoadQueryLines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    const size_t last = line.find_last_not_of(" \t\r");
    lines.push_back(line.substr(first, last - first + 1));
  }
  return lines;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Locale-independent number rendering: shortest round-trip-free form with
/// up to six significant digits (scores are simple ratios in these graphs).
std::string Num(double v) {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << std::setprecision(6) << v;
  return out.str();
}

/// Deterministic transcript for one query against one graph.
std::string RenderQuery(const TemporalGraph& g, const search::Query& query,
                        const search::SearchResponse& r) {
  std::ostringstream out;
  out << "query: " << query.ToString() << "\n";
  out << "stop: " << search::StopReasonName(r.stop_reason)
      << "  results: " << r.results.size() << "\n";
  int rank = 0;
  for (const search::ResultTree& tree : r.results) {
    out << "#" << ++rank << " root=" << g.node(tree.root).label
        << " weight=" << Num(tree.total_weight)
        << " time=" << tree.time.ToString()
        << " score=" << search::FormatScore(query.ranking, tree.score)
        << "\n";
    for (const graph::EdgeId e : tree.edges) {
      out << "  " << g.node(g.edge(e).src).label << " -> "
          << g.node(g.edge(e).dst).label << " valid "
          << g.edge(e).validity.ToString() << "\n";
    }
    if (tree.edges.empty()) {
      out << "  (single node)\n";
    }
  }
  return out.str();
}

std::string RenderCase(const std::string& graph_file) {
  const std::string stem =
      graph_file.substr(0, graph_file.find_last_of('.'));
  auto loaded = graph::LoadGraphFromFile(GoldenPath(graph_file));
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  const TemporalGraph g = std::move(loaded).value();
  const graph::InvertedIndex index(g);
  const search::SearchEngine engine(g, &index);

  std::ostringstream out;
  out << "# Golden transcript for " << graph_file
      << ". Regenerate: TGKS_UPDATE_GOLDEN=1 ctest -R GoldenE2E\n";
  for (const std::string& text :
       LoadQueryLines(GoldenPath(stem + ".queries"))) {
    auto query = search::ParseQuery(text);
    EXPECT_TRUE(query.ok()) << text << ": " << query.status();
    search::SearchOptions options;
    options.k = 10;
    auto r = engine.Search(*query, options);
    EXPECT_TRUE(r.ok()) << text << ": " << r.status();
    out << "\n" << RenderQuery(g, *query, *r);
  }
  return out.str();
}

void CheckGolden(const std::string& graph_file) {
  const std::string stem =
      graph_file.substr(0, graph_file.find_last_of('.'));
  const std::string expected_path = GoldenPath(stem + ".expected");
  const std::string actual = RenderCase(graph_file);
  if (std::getenv("TGKS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(expected_path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << expected_path;
    out << actual;
    GTEST_LOG_(INFO) << "updated " << expected_path;
    return;
  }
  EXPECT_EQ(actual, ReadFile(expected_path))
      << "transcript drift for " << graph_file
      << "; regenerate with TGKS_UPDATE_GOLDEN=1 if intentional";
}

TEST(GoldenE2ETest, SocialGraph) { CheckGolden("social.tgf"); }
TEST(GoldenE2ETest, ArchiveGraph) { CheckGolden("archive.tgf"); }
TEST(GoldenE2ETest, SparseGraph) { CheckGolden("sparse.tgf"); }
TEST(GoldenE2ETest, WeightedGraph) { CheckGolden("weighted.tgf"); }

}  // namespace
}  // namespace tgks
