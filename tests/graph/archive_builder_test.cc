#include "graph/archive_builder.h"

#include <gtest/gtest.h>

#include "graph/transform.h"
#include "temporal/interval_set.h"

namespace tgks::graph {
namespace {

using temporal::Interval;
using temporal::IntervalSet;

TEST(ArchiveBuilderTest, FoldsEventsIntoIntervals) {
  ArchiveBuilder b;
  const NodeId mary = b.DeclareNode("Mary");
  const NodeId bob = b.DeclareNode("Bob");
  const EdgeId friendship = b.DeclareEdge(mary, bob);
  ASSERT_TRUE(b.NodeAppears(mary, 0).ok());
  ASSERT_TRUE(b.NodeAppears(bob, 2).ok());
  ASSERT_TRUE(b.EdgeAppears(friendship, 3).ok());
  ASSERT_TRUE(b.EdgeDisappears(friendship, 6).ok());
  auto g = b.Build(10);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->node(mary).validity, IntervalSet(Interval(0, 9)));
  EXPECT_EQ(g->node(bob).validity, IntervalSet(Interval(2, 9)));
  EXPECT_EQ(g->edge(0).validity, IntervalSet(Interval(3, 5)));
}

TEST(ArchiveBuilderTest, MultipleLifetimes) {
  ArchiveBuilder b;
  const NodeId n = b.DeclareNode("account");
  ASSERT_TRUE(b.NodeAppears(n, 1).ok());
  ASSERT_TRUE(b.NodeDisappears(n, 3).ok());
  ASSERT_TRUE(b.NodeAppears(n, 6).ok());  // Re-activated.
  auto g = b.Build(10);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->node(n).validity, (IntervalSet{{1, 2}, {6, 9}}));
}

TEST(ArchiveBuilderTest, EventsArriveOutOfOrder) {
  ArchiveBuilder b;
  const NodeId n = b.DeclareNode("x");
  ASSERT_TRUE(b.NodeDisappears(n, 5).ok());  // Logged late.
  ASSERT_TRUE(b.NodeAppears(n, 1).ok());
  auto g = b.Build(10);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->node(n).validity, IntervalSet(Interval(1, 4)));
}

TEST(ArchiveBuilderTest, RejectsInconsistentEvents) {
  {
    ArchiveBuilder b;
    const NodeId n = b.DeclareNode("x");
    ASSERT_TRUE(b.NodeAppears(n, 1).ok());
    ASSERT_TRUE(b.NodeAppears(n, 3).ok());  // Already alive.
    EXPECT_FALSE(b.Build(10).ok());
  }
  {
    ArchiveBuilder b;
    const NodeId n = b.DeclareNode("x");
    ASSERT_TRUE(b.NodeDisappears(n, 3).ok());  // Never appeared.
    EXPECT_FALSE(b.Build(10).ok());
  }
  {
    ArchiveBuilder b;
    const NodeId n = b.DeclareNode("x");
    ASSERT_TRUE(b.NodeAppears(n, 3).ok());
    ASSERT_TRUE(b.NodeDisappears(n, 3).ok());  // Empty lifetime.
    EXPECT_FALSE(b.Build(10).ok());
  }
  {
    ArchiveBuilder b;
    b.DeclareNode("never-appears");
    EXPECT_FALSE(b.Build(10).ok());
  }
  {
    ArchiveBuilder b;
    const NodeId n = b.DeclareNode("x");
    ASSERT_TRUE(b.NodeAppears(n, 99).ok());
    EXPECT_FALSE(b.Build(10).ok());  // Beyond the timeline.
  }
  {
    ArchiveBuilder b;
    EXPECT_FALSE(b.NodeAppears(5, 0).ok());     // Undeclared.
    EXPECT_FALSE(b.EdgeAppears(0, 0).ok());     // Undeclared.
    EXPECT_FALSE(b.NodeAppears(0, -1).ok());    // Before the timeline.
  }
}

TEST(ArchiveBuilderTest, RejectsEdgeOutlivingEndpoint) {
  ArchiveBuilder b;
  const NodeId u = b.DeclareNode("u");
  const NodeId v = b.DeclareNode("v");
  const EdgeId e = b.DeclareEdge(u, v);
  ASSERT_TRUE(b.NodeAppears(u, 0).ok());
  ASSERT_TRUE(b.NodeAppears(v, 0).ok());
  ASSERT_TRUE(b.NodeDisappears(v, 4).ok());
  ASSERT_TRUE(b.EdgeAppears(e, 2).ok());  // Edge stays open through 9...
  EXPECT_FALSE(b.Build(10).ok());         // ...but v died at 4.
}

TEST(TransformTest, RestrictToWindowClipsAndShifts) {
  ArchiveBuilder b;
  const NodeId early = b.DeclareNode("early");
  const NodeId late = b.DeclareNode("late");
  const NodeId both = b.DeclareNode("both");
  ASSERT_TRUE(b.NodeAppears(early, 0).ok());
  ASSERT_TRUE(b.NodeDisappears(early, 3).ok());
  ASSERT_TRUE(b.NodeAppears(late, 7).ok());
  ASSERT_TRUE(b.NodeAppears(both, 1).ok());
  const EdgeId e = b.DeclareEdge(late, both);
  ASSERT_TRUE(b.EdgeAppears(e, 8).ok());
  auto g = b.Build(10);
  ASSERT_TRUE(g.ok()) << g.status();

  auto window = RestrictToWindow(*g, Interval(5, 9));
  ASSERT_TRUE(window.ok()) << window.status();
  EXPECT_EQ(window->graph.timeline_length(), 5);
  // "early" (dead by t3) is dropped; the ids of the others are remapped.
  EXPECT_EQ(window->node_mapping[static_cast<size_t>(early)], kInvalidNode);
  const NodeId new_late = window->node_mapping[static_cast<size_t>(late)];
  const NodeId new_both = window->node_mapping[static_cast<size_t>(both)];
  ASSERT_NE(new_late, kInvalidNode);
  ASSERT_NE(new_both, kInvalidNode);
  EXPECT_EQ(window->graph.node(new_late).validity,
            IntervalSet(Interval(2, 4)));  // [7,9] shifted by 5.
  EXPECT_EQ(window->graph.node(new_both).validity,
            IntervalSet(Interval(0, 4)));
  EXPECT_EQ(window->graph.num_edges(), 1);
  EXPECT_EQ(window->graph.edge(0).validity, IntervalSet(Interval(3, 4)));
}

TEST(TransformTest, RestrictWithoutShiftKeepsNumbering) {
  ArchiveBuilder b;
  const NodeId n = b.DeclareNode("n");
  ASSERT_TRUE(b.NodeAppears(n, 2).ok());
  auto g = b.Build(10);
  ASSERT_TRUE(g.ok());
  auto window = RestrictToWindow(*g, Interval(4, 7), /*shift_origin=*/false);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window->graph.timeline_length(), 10);
  EXPECT_EQ(window->graph.node(0).validity, IntervalSet(Interval(4, 7)));
}

TEST(TransformTest, MaterializeSnapshot) {
  ArchiveBuilder b;
  const NodeId a = b.DeclareNode("a");
  const NodeId c = b.DeclareNode("c");
  ASSERT_TRUE(b.NodeAppears(a, 0).ok());
  ASSERT_TRUE(b.NodeAppears(c, 5).ok());
  const EdgeId e = b.DeclareEdge(a, c);
  ASSERT_TRUE(b.EdgeAppears(e, 6).ok());
  auto g = b.Build(10);
  ASSERT_TRUE(g.ok());

  auto at3 = MaterializeSnapshot(*g, 3);
  ASSERT_TRUE(at3.ok());
  EXPECT_EQ(at3->graph.num_nodes(), 1);  // Only "a".
  EXPECT_EQ(at3->graph.num_edges(), 0);
  EXPECT_EQ(at3->graph.timeline_length(), 1);

  auto at7 = MaterializeSnapshot(*g, 7);
  ASSERT_TRUE(at7.ok());
  EXPECT_EQ(at7->graph.num_nodes(), 2);
  EXPECT_EQ(at7->graph.num_edges(), 1);
}

TEST(TransformTest, RejectsBadWindows) {
  ArchiveBuilder b;
  const NodeId n = b.DeclareNode("n");
  ASSERT_TRUE(b.NodeAppears(n, 0).ok());
  auto g = b.Build(10);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(RestrictToWindow(*g, Interval(5, 4)).ok());
  EXPECT_FALSE(RestrictToWindow(*g, Interval(-1, 4)).ok());
  EXPECT_FALSE(RestrictToWindow(*g, Interval(5, 99)).ok());
}

}  // namespace
}  // namespace tgks::graph
