// Differential suite for the SoA expansion view.
//
// The view is a pure layout change: it must enumerate, per node, exactly the
// (edge id, src, weight, validity) tuples of TemporalGraph::InEdges +
// edge(), in the same order, with weights byte-identical (the search
// iterators' distance arithmetic must not change by even one ULP). We check
// that on 60 seeded random graphs whose validity sets mix single-interval
// (inline encoding) and multi-interval (interned pool) shapes, plus targeted
// unit tests for interning and the load path.

#include "graph/expansion_view.h"

#include <cstring>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_builder.h"
#include "graph/serialization.h"
#include "graph/temporal_graph.h"

namespace tgks::graph {
namespace {

using temporal::Interval;
using temporal::IntervalSet;
using temporal::TimePoint;

/// Random validity: 1-3 intervals, normalized. Drawing interval endpoints
/// from a small palette makes byte-equal sets recur, exercising interning.
IntervalSet RandomValidity(Rng* rng, TimePoint horizon) {
  std::vector<Interval> ivs;
  const int n = 1 + static_cast<int>(rng->Uniform(3));
  for (int i = 0; i < n; ++i) {
    const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
    const TimePoint b = static_cast<TimePoint>(rng->Uniform(horizon));
    ivs.emplace_back(std::min(a, b), std::max(a, b));
  }
  return IntervalSet(ivs);
}

TemporalGraph RandomGraph(Rng* rng, int num_nodes, int num_edges,
                          TimePoint horizon) {
  GraphBuilder b(horizon, ValidityPolicy::kClamp);
  std::vector<IntervalSet> node_validity;
  for (int i = 0; i < num_nodes; ++i) {
    node_validity.push_back(RandomValidity(rng, horizon));
    b.AddNode("n" + std::to_string(i), node_validity.back(),
              static_cast<double>(rng->Uniform(5)) / 4.0);
  }
  int added = 0;
  for (int i = 0; i < num_edges * 3 && added < num_edges; ++i) {
    const NodeId u = static_cast<NodeId>(rng->Uniform(num_nodes));
    const NodeId v = static_cast<NodeId>(rng->Uniform(num_nodes));
    if (u == v) continue;
    IntervalSet validity = RandomValidity(rng, horizon);
    // kClamp trims edges to their endpoints' common validity but rejects
    // ones that end up never valid — only keep draws that survive, so
    // Build() below cannot fail. Edges whose validity pokes outside the
    // endpoints still exercise the clamping path.
    if (validity.Intersect(node_validity[static_cast<size_t>(u)])
            .Intersect(node_validity[static_cast<size_t>(v)])
            .IsEmpty()) {
      continue;
    }
    b.AddEdge(u, v, std::move(validity),
              static_cast<double>(1 + rng->Uniform(7)) / 4.0);
    ++added;
  }
  auto g = b.Build();
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

/// Bitwise equality — double == would also accept -0.0 vs 0.0 etc.; the
/// view must carry the exact bytes the graph carries.
bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// The view's validity of an edge slot, materialized for comparison.
IntervalSet ViewEdgeValidity(const ExpansionView& view, int64_t slot) {
  return view.WithEdgeValidity(
      slot, [](const IntervalSet& v) { return IntervalSet(v); });
}

IntervalSet ViewNodeValidity(const ExpansionView& view, NodeId n) {
  return view.WithNodeValidity(
      n, [](const IntervalSet& v) { return IntervalSet(v); });
}

void ExpectViewMirrorsGraph(const TemporalGraph& g, Rng* rng) {
  const ExpansionView& view = g.expansion_view();
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const auto in_edges = g.InEdges(n);
    const ExpansionView::SlotRange slots = view.InSlots(n);
    ASSERT_EQ(slots.end - slots.begin,
              static_cast<int64_t>(in_edges.size()));
    for (size_t i = 0; i < in_edges.size(); ++i) {
      const int64_t s = slots.begin + static_cast<int64_t>(i);
      const EdgeId e = in_edges[i];
      const Edge& edge = g.edge(e);
      ASSERT_EQ(view.edge_id(s), e);
      ASSERT_EQ(view.src(s), edge.src);
      ASSERT_TRUE(SameBits(view.edge_weight(s), edge.weight));
      ASSERT_EQ(ViewEdgeValidity(view, s), edge.validity);
      // The intersection helper must equal IntervalSet intersection for an
      // arbitrary probe (the iterators' T ∩ val(e) step).
      const IntervalSet probe = RandomValidity(rng, g.timeline_length());
      IntervalSet expected;
      expected.AssignIntersectionOf(probe, edge.validity);
      IntervalSet actual;
      view.IntersectEdgeValidity(s, probe, &actual);
      ASSERT_EQ(actual, expected);
      const TimePoint t =
          static_cast<TimePoint>(rng->Uniform(g.timeline_length()));
      ASSERT_EQ(view.EdgeAliveAt(s, t), edge.validity.Contains(t));
    }
    const Node& node = g.node(n);
    ASSERT_TRUE(SameBits(view.node_weight(n), node.weight));
    ASSERT_EQ(ViewNodeValidity(view, n), node.validity);
    const TimePoint t =
        static_cast<TimePoint>(rng->Uniform(g.timeline_length()));
    ASSERT_EQ(view.NodeAliveAt(n, t), node.validity.Contains(t));
  }
  const ExpansionView::LayoutStats& stats = view.layout_stats();
  EXPECT_EQ(stats.edge_slots, static_cast<int64_t>(g.num_edges()));
  EXPECT_EQ(stats.inline_edge_slots + stats.pooled_edge_slots,
            stats.edge_slots);
  EXPECT_EQ(stats.inline_node_slots + stats.pooled_node_slots,
            static_cast<int64_t>(g.num_nodes()));
}

TEST(ExpansionViewDifferentialTest, MirrorsInEdgesOn60RandomGraphs) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 7919);
    for (int round = 0; round < 6; ++round) {
      const int nodes = 8 + static_cast<int>(rng.Uniform(40));
      const int edges = nodes + static_cast<int>(rng.Uniform(4 * nodes));
      const TimePoint horizon = 6 + static_cast<TimePoint>(rng.Uniform(40));
      const TemporalGraph g = RandomGraph(&rng, nodes, edges, horizon);
      ExpectViewMirrorsGraph(g, &rng);
    }
  }
}

TEST(ExpansionViewTest, SingleIntervalValidityStaysInline) {
  GraphBuilder b(20, ValidityPolicy::kStrict);
  b.AddNode("a", IntervalSet{{2, 9}}, 1.0);
  b.AddNode("b", IntervalSet{{0, 19}}, 0.0);
  b.AddEdge(0, 1, IntervalSet{{3, 7}}, 1.0);
  const TemporalGraph g = std::move(b.Build()).value();
  const ExpansionView& view = g.expansion_view();
  const auto slots = view.InSlots(1);
  ASSERT_EQ(slots.end - slots.begin, 1);
  EXPECT_EQ(view.edge_vpool(slots.begin), ExpansionView::kInlineValidity);
  EXPECT_EQ(view.node_vpool(0), ExpansionView::kInlineValidity);
  EXPECT_EQ(view.node_vpool(1), ExpansionView::kInlineValidity);
  EXPECT_TRUE(view.pool().empty());
  EXPECT_EQ(view.layout_stats().pool_entries, 0);
}

TEST(ExpansionViewTest, DuplicateValiditySetsAreInterned) {
  const IntervalSet shared{{1, 3}, {6, 9}};
  const IntervalSet other{{0, 2}, {5, 5}};
  GraphBuilder b(12, ValidityPolicy::kStrict);
  const NodeId hub = b.AddNode("hub", IntervalSet{{0, 11}}, 0.0);
  for (int i = 0; i < 4; ++i) {
    const NodeId n =
        b.AddNode("n" + std::to_string(i), IntervalSet{{0, 11}}, 0.0);
    b.AddEdge(n, hub, i < 3 ? shared : other, 1.0);
  }
  const TemporalGraph g = std::move(b.Build()).value();
  const ExpansionView& view = g.expansion_view();
  const auto slots = view.InSlots(hub);
  ASSERT_EQ(slots.end - slots.begin, 4);
  // The three `shared` edges reference one pool entry; `other` gets its own.
  const int32_t p0 = view.edge_vpool(slots.begin);
  ASSERT_GE(p0, 0);
  EXPECT_EQ(view.edge_vpool(slots.begin + 1), p0);
  EXPECT_EQ(view.edge_vpool(slots.begin + 2), p0);
  const int32_t p3 = view.edge_vpool(slots.begin + 3);
  ASSERT_GE(p3, 0);
  EXPECT_NE(p3, p0);
  EXPECT_EQ(view.pool().size(), 2u);
  EXPECT_EQ(view.pool()[static_cast<size_t>(p0)], shared);
  EXPECT_EQ(view.pool()[static_cast<size_t>(p3)], other);
  const ExpansionView::LayoutStats& stats = view.layout_stats();
  EXPECT_EQ(stats.pool_entries, 2);
  EXPECT_EQ(stats.intern_hits, 2);  // Second and third `shared` reference.
  EXPECT_EQ(stats.pooled_edge_slots, 4);
}

TEST(ExpansionViewTest, SerializationRoundTripRebuildsView) {
  Rng rng(424242);
  const TemporalGraph g = RandomGraph(&rng, 16, 40, 15);
  std::ostringstream text;
  ASSERT_TRUE(SaveGraph(g, text).ok());
  std::istringstream in(text.str());
  auto loaded = LoadGraph(in);
  ASSERT_TRUE(loaded.ok());
  // The load funnels through GraphBuilder, so the loaded graph carries a
  // fresh view mirroring its own adjacency.
  ExpectViewMirrorsGraph(loaded.value(), &rng);
}

}  // namespace
}  // namespace tgks::graph
