#include "graph/graph_builder.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "temporal/interval_set.h"

namespace tgks::graph {
namespace {

using temporal::Interval;
using temporal::IntervalSet;

TEST(GraphBuilderTest, EmptyGraphBuilds) {
  GraphBuilder b(10);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 0);
  EXPECT_EQ(g->num_edges(), 0);
  EXPECT_EQ(g->timeline_length(), 10);
}

TEST(GraphBuilderTest, RejectsNonPositiveTimeline) {
  GraphBuilder b(0);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, NodeValidityClippedToTimeline) {
  GraphBuilder b(5);
  const NodeId n = b.AddNode("x", IntervalSet{{-3, 10}});
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->node(n).validity, IntervalSet(Interval(0, 4)));
}

TEST(GraphBuilderTest, WholeTimelineNodeOverload) {
  GraphBuilder b(5);
  const NodeId n = b.AddNode("x", 2.5);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->node(n).validity, IntervalSet::All(5));
  EXPECT_DOUBLE_EQ(g->node(n).weight, 2.5);
}

TEST(GraphBuilderTest, RejectsDanglingEdge) {
  GraphBuilder b(5);
  const NodeId n = b.AddNode("x");
  b.AddEdge(n, n + 7, IntervalSet{{0, 1}});
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, RejectsNegativeWeights) {
  {
    GraphBuilder b(5);
    b.AddNode("x", -1.0);
    EXPECT_FALSE(b.Build().ok());
  }
  {
    GraphBuilder b(5);
    const NodeId u = b.AddNode("x");
    const NodeId v = b.AddNode("y");
    b.AddEdge(u, v, IntervalSet{{0, 1}}, -2.0);
    EXPECT_FALSE(b.Build().ok());
  }
}

TEST(GraphBuilderTest, StrictPolicyRejectsEdgeOutsideEndpoints) {
  GraphBuilder b(10, ValidityPolicy::kStrict);
  const NodeId u = b.AddNode("u", IntervalSet{{0, 4}});
  const NodeId v = b.AddNode("v", IntervalSet{{2, 9}});
  b.AddEdge(u, v, IntervalSet{{2, 6}});  // Beyond u's validity.
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, ClampPolicyIntersectsWithEndpoints) {
  GraphBuilder b(10, ValidityPolicy::kClamp);
  const NodeId u = b.AddNode("u", IntervalSet{{0, 4}});
  const NodeId v = b.AddNode("v", IntervalSet{{2, 9}});
  b.AddEdge(u, v, IntervalSet{{2, 6}});
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->edge(0).validity, IntervalSet(Interval(2, 4)));
}

TEST(GraphBuilderTest, DefaultEdgeValidityIsEndpointIntersection) {
  GraphBuilder b(10, ValidityPolicy::kStrict);
  const NodeId u = b.AddNode("u", IntervalSet{{0, 5}});
  const NodeId v = b.AddNode("v", IntervalSet{{3, 9}});
  b.AddEdge(u, v);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->edge(0).validity, IntervalSet(Interval(3, 5)));
}

TEST(GraphBuilderTest, RejectsNeverValidEdge) {
  GraphBuilder b(10, ValidityPolicy::kClamp);
  const NodeId u = b.AddNode("u", IntervalSet{{0, 2}});
  const NodeId v = b.AddNode("v", IntervalSet{{5, 9}});
  b.AddEdge(u, v);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, AdjacencyListsAreConsistent) {
  GraphBuilder b(4);
  const NodeId a = b.AddNode("a");
  const NodeId c = b.AddNode("c");
  const NodeId d = b.AddNode("d");
  b.AddEdge(a, c);
  b.AddEdge(a, d);
  b.AddEdge(c, d);
  b.AddEdge(d, a);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());

  auto out_of = [&](NodeId n) {
    std::vector<NodeId> v;
    for (EdgeId e : g->OutEdges(n)) v.push_back(g->edge(e).dst);
    std::sort(v.begin(), v.end());
    return v;
  };
  auto in_of = [&](NodeId n) {
    std::vector<NodeId> v;
    for (EdgeId e : g->InEdges(n)) v.push_back(g->edge(e).src);
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(out_of(a), (std::vector<NodeId>{c, d}));
  EXPECT_EQ(out_of(c), (std::vector<NodeId>{d}));
  EXPECT_EQ(out_of(d), (std::vector<NodeId>{a}));
  EXPECT_EQ(in_of(a), (std::vector<NodeId>{d}));
  EXPECT_EQ(in_of(c), (std::vector<NodeId>{a}));
  EXPECT_EQ(in_of(d), (std::vector<NodeId>{a, c}));

  // Every edge appears exactly once per direction.
  size_t out_total = 0, in_total = 0;
  for (NodeId n = 0; n < g->num_nodes(); ++n) {
    out_total += g->OutEdges(n).size();
    in_total += g->InEdges(n).size();
  }
  EXPECT_EQ(out_total, static_cast<size_t>(g->num_edges()));
  EXPECT_EQ(in_total, static_cast<size_t>(g->num_edges()));
}

TEST(GraphBuilderTest, AliveAtQueries) {
  GraphBuilder b(10);
  const NodeId u = b.AddNode("u", IntervalSet{{0, 4}});
  const NodeId v = b.AddNode("v", IntervalSet{{2, 9}});
  b.AddEdge(u, v);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->NodeAliveAt(u, 0));
  EXPECT_FALSE(g->NodeAliveAt(u, 5));
  EXPECT_TRUE(g->EdgeAliveAt(0, 3));
  EXPECT_FALSE(g->EdgeAliveAt(0, 1));
  EXPECT_FALSE(g->EdgeAliveAt(0, 5));
}

TEST(GraphBuilderTest, ParallelEdgesAndSelfLoopsAllowed) {
  GraphBuilder b(4);
  const NodeId a = b.AddNode("a");
  const NodeId c = b.AddNode("c");
  b.AddEdge(a, c);
  b.AddEdge(a, c);
  b.AddEdge(a, a);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 3);
  EXPECT_EQ(g->OutEdges(a).size(), 3u);
}

}  // namespace
}  // namespace tgks::graph
