#include "graph/graph_stats.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "testutil/paper_graphs.h"

namespace tgks::graph {
namespace {

using temporal::IntervalSet;

TEST(GraphStatsTest, CountsAndDegrees) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  Rng rng(1);
  const GraphStats stats = ComputeGraphStats(g, &rng);
  EXPECT_EQ(stats.num_nodes, g.num_nodes());
  EXPECT_EQ(stats.num_edges, g.num_edges());
  EXPECT_EQ(stats.timeline_length, 8);
  EXPECT_DOUBLE_EQ(stats.avg_out_degree,
                   static_cast<double>(g.num_edges()) / g.num_nodes());
  EXPECT_GE(stats.avg_intervals_per_node, 1.0);
}

TEST(GraphStatsTest, FullOverlapGivesConnectivityOne) {
  // Append-only graph (all validity reaching the end): any two adjacent
  // edges share the final instant, exactly DBLP's 100% edge connectivity.
  GraphBuilder b(10);
  const NodeId a = b.AddNode("a", IntervalSet{{0, 9}});
  const NodeId c = b.AddNode("c", IntervalSet{{3, 9}});
  const NodeId d = b.AddNode("d", IntervalSet{{6, 9}});
  b.AddEdge(a, c);
  b.AddEdge(c, d);
  b.AddEdge(a, d);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  Rng rng(2);
  EXPECT_DOUBLE_EQ(MeasureEdgeConnectivity(*g, &rng, 2000), 1.0);
}

TEST(GraphStatsTest, DisjointEdgesGiveConnectivityZero) {
  GraphBuilder b(10);
  const NodeId a = b.AddNode("a", IntervalSet{{0, 9}});
  const NodeId c = b.AddNode("c", IntervalSet{{0, 9}});
  const NodeId d = b.AddNode("d", IntervalSet{{0, 9}});
  b.AddEdge(a, c, IntervalSet{{0, 2}});
  b.AddEdge(c, d, IntervalSet{{5, 9}});
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  Rng rng(3);
  EXPECT_DOUBLE_EQ(MeasureEdgeConnectivity(*g, &rng, 2000), 0.0);
}

TEST(GraphStatsTest, TinyGraphsDoNotCrash) {
  GraphBuilder b(5);
  b.AddNode("solo");
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  Rng rng(4);
  const GraphStats stats = ComputeGraphStats(*g, &rng);
  EXPECT_EQ(stats.num_edges, 0);
  EXPECT_DOUBLE_EQ(stats.edge_connectivity, 1.0);  // Vacuous.
}

}  // namespace
}  // namespace tgks::graph
