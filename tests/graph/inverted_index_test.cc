#include "graph/inverted_index.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "testutil/paper_graphs.h"

namespace tgks::graph {
namespace {

using temporal::IntervalSet;

TemporalGraph MakeLabeledGraph() {
  GraphBuilder b(4);
  b.AddNode("Keyword Search on Temporal Graphs");  // 0
  b.AddNode("graph search");                       // 1
  b.AddNode("TEMPORAL");                           // 2
  b.AddNode("");                                   // 3
  b.AddNode("search search search");               // 4
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(InvertedIndexTest, WordLookupIsCaseInsensitive) {
  const TemporalGraph g = MakeLabeledGraph();
  const InvertedIndex index(g);
  const auto matches = index.Lookup("Temporal");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], 0);
  EXPECT_EQ(matches[1], 2);
}

TEST(InvertedIndexTest, MultiWordLabelsIndexEachWord) {
  const TemporalGraph g = MakeLabeledGraph();
  const InvertedIndex index(g);
  EXPECT_EQ(index.Lookup("keyword").size(), 1u);
  EXPECT_EQ(index.Lookup("on").size(), 1u);
  const auto search = index.Lookup("search");
  ASSERT_EQ(search.size(), 3u);
  EXPECT_EQ(search[0], 0);
  EXPECT_EQ(search[1], 1);
  EXPECT_EQ(search[2], 4);
}

TEST(InvertedIndexTest, RepeatedWordInLabelPostsOnce) {
  const TemporalGraph g = MakeLabeledGraph();
  const InvertedIndex index(g);
  int count = 0;
  for (NodeId n : index.Lookup("search")) count += (n == 4);
  EXPECT_EQ(count, 1);
}

TEST(InvertedIndexTest, UnknownKeywordEmpty) {
  const TemporalGraph g = MakeLabeledGraph();
  const InvertedIndex index(g);
  EXPECT_TRUE(index.Lookup("nonexistent").empty());
  EXPECT_TRUE(index.Lookup("").empty());
}

TEST(InvertedIndexTest, NoPartialWordMatch) {
  const TemporalGraph g = MakeLabeledGraph();
  const InvertedIndex index(g);
  EXPECT_TRUE(index.Lookup("grap").empty());
  EXPECT_TRUE(index.Lookup("searching").empty());
}

TEST(InvertedIndexTest, SocialFixtureNames) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const InvertedIndex index(g);
  const auto mary = index.Lookup("mary");
  ASSERT_EQ(mary.size(), 1u);
  EXPECT_EQ(mary[0], ids.mary);
  const auto microsoft = index.Lookup("MICROSOFT");
  ASSERT_EQ(microsoft.size(), 1u);
  EXPECT_EQ(microsoft[0], ids.microsoft);
}

}  // namespace
}  // namespace tgks::graph
