// Differential oracle for the temporal reachability labeling.
//
// The index factors the timeline into constant-snapshot epochs and answers
// CanReach / EarliestArrival through chain-cover labels with a DFS
// fallback. This suite pins every answer to a brute-force per-snapshot BFS
// across ALL (u, t, v) triples on 60 seeded random graphs (the same
// 10-seed x 6-round shape as the snapshot-reducibility harness), failing
// loudly with the witness triple on any mismatch. Property tests cover the
// EarliestArrival contract (lower bound, monotone in the start instant,
// "a later start never reaches more"), transitivity of the boolean oracle,
// per-query viability against its set-theoretic definition, build
// determinism, and byte-identical serialization round trips.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_builder.h"
#include "graph/reachability_index.h"
#include "graph/serialization.h"
#include "temporal/interval_set.h"

namespace tgks {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::ReachabilityIndex;
using graph::TemporalGraph;
using temporal::IntervalSet;
using temporal::TimePoint;

/// Same generator shape as the snapshot-reducibility harness: single-
/// interval validities drawn inside the horizon, clamp policy, resampled
/// until structurally valid.
TemporalGraph RandomGraph(Rng* rng, int num_nodes, int num_edges,
                          TimePoint horizon) {
  while (true) {
    GraphBuilder b(horizon, graph::ValidityPolicy::kClamp);
    for (int i = 0; i < num_nodes; ++i) {
      const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
      const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
      b.AddNode("n" + std::to_string(i),
                IntervalSet{{std::min(a, c), std::max(a, c)}},
                static_cast<double>(rng->Uniform(4)));
    }
    int added = 0;
    for (int i = 0; i < num_edges * 3 && added < num_edges; ++i) {
      const NodeId u = static_cast<NodeId>(rng->Uniform(num_nodes));
      const NodeId v = static_cast<NodeId>(rng->Uniform(num_nodes));
      if (u == v) continue;
      const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
      const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
      b.AddEdge(u, v, IntervalSet{{std::min(a, c), std::max(a, c)}},
                static_cast<double>(1 + rng->Uniform(4)));
      ++added;
    }
    auto g = b.Build();
    if (g.ok()) return std::move(g).value();
  }
}

/// Brute-force snapshot reachability: reach[t][u] has bit v set iff the
/// snapshot G_t contains a directed path u -> v (u alive reaches itself).
std::vector<std::vector<uint64_t>> BfsOracle(const TemporalGraph& g) {
  EXPECT_LE(g.num_nodes(), 64) << "oracle uses 64-bit row masks";
  std::vector<std::vector<uint64_t>> reach(
      static_cast<size_t>(g.timeline_length()),
      std::vector<uint64_t>(static_cast<size_t>(g.num_nodes()), 0));
  for (TimePoint t = 0; t < g.timeline_length(); ++t) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (!g.NodeAliveAt(u, t)) continue;
      std::vector<NodeId> queue{u};
      uint64_t seen = uint64_t{1} << u;
      while (!queue.empty()) {
        const NodeId cur = queue.back();
        queue.pop_back();
        for (const graph::EdgeId e : g.OutEdges(cur)) {
          if (!g.EdgeAliveAt(e, t)) continue;
          const NodeId next = g.edge(e).dst;
          if ((seen >> next) & 1) continue;
          seen |= uint64_t{1} << next;
          queue.push_back(next);
        }
      }
      reach[static_cast<size_t>(t)][static_cast<size_t>(u)] = seen;
    }
  }
  return reach;
}

bool OracleReaches(const std::vector<std::vector<uint64_t>>& reach,
                   NodeId u, TimePoint t, NodeId v) {
  return ((reach[static_cast<size_t>(t)][static_cast<size_t>(u)] >> v) & 1) !=
         0;
}

void CheckAllTriples(const TemporalGraph& g, const std::string& context) {
  const ReachabilityIndex& index = g.reachability();
  const auto oracle = BfsOracle(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      TimePoint expected_earliest = temporal::kNoTimePoint;
      for (TimePoint t = g.timeline_length() - 1; t >= 0; --t) {
        const bool expected = OracleReaches(oracle, u, t, v);
        ASSERT_EQ(index.CanReach(u, t, v), expected)
            << context << ": CanReach witness (u=" << u << ", t=" << t
            << ", v=" << v << ") disagrees with snapshot BFS (expected "
            << (expected ? "reachable" : "unreachable") << ")";
        if (expected) expected_earliest = t;
        ASSERT_EQ(index.EarliestArrival(u, t, v), expected_earliest)
            << context << ": EarliestArrival witness (u=" << u << ", t=" << t
            << ", v=" << v << ")";
      }
    }
  }
}

void CheckProperties(const TemporalGraph& g, Rng* rng,
                     const std::string& context) {
  const ReachabilityIndex& index = g.reachability();
  const auto n = static_cast<uint64_t>(g.num_nodes());
  for (int trial = 0; trial < 200; ++trial) {
    const NodeId u = static_cast<NodeId>(rng->Uniform(n));
    const NodeId v = static_cast<NodeId>(rng->Uniform(n));
    const NodeId w = static_cast<NodeId>(rng->Uniform(n));
    const TimePoint t =
        static_cast<TimePoint>(rng->Uniform(g.timeline_length()));

    // Transitivity of the snapshot relation.
    if (index.CanReach(u, t, v) && index.CanReach(v, t, w)) {
      EXPECT_TRUE(index.CanReach(u, t, w))
          << context << ": transitivity broken at (u=" << u << ", t=" << t
          << ", v=" << v << ", w=" << w << ")";
    }

    // EarliestArrival is a lower bound consistent with CanReach...
    const TimePoint arrival = index.EarliestArrival(u, t, v);
    if (arrival != temporal::kNoTimePoint) {
      EXPECT_GE(arrival, t) << context;
      EXPECT_TRUE(index.CanReach(u, arrival, v))
          << context << ": EarliestArrival names a non-reaching instant (u="
          << u << ", t=" << t << ", v=" << v << ", arrival=" << arrival
          << ")";
    }
    EXPECT_EQ(arrival == t, index.CanReach(u, t, v)) << context;

    // ...and monotone in the start: a later start never reaches more, and
    // never arrives earlier.
    const TimePoint later =
        t + static_cast<TimePoint>(
                rng->Uniform(g.timeline_length() - t));
    const TimePoint later_arrival = index.EarliestArrival(u, later, v);
    if (later_arrival != temporal::kNoTimePoint) {
      ASSERT_NE(arrival, temporal::kNoTimePoint)
          << context << ": start " << later << " reaches (u=" << u
          << " -> v=" << v << ") but earlier start " << t << " does not";
      EXPECT_LE(arrival, later_arrival) << context;
    }
  }
}

void CheckViability(const TemporalGraph& g, Rng* rng,
                    const std::string& context) {
  const ReachabilityIndex& index = g.reachability();
  const auto oracle = BfsOracle(g);
  const size_t num_keywords = 1 + rng->Uniform(3);
  std::vector<std::vector<NodeId>> matches(num_keywords);
  for (auto& list : matches) {
    const size_t count = 1 + rng->Uniform(3);
    for (size_t i = 0; i < count; ++i) {
      list.push_back(
          static_cast<NodeId>(rng->Uniform(static_cast<uint64_t>(
              g.num_nodes()))));
    }
  }

  std::vector<IntervalSet> viability;
  index.ComputeViability(matches, &viability);
  ASSERT_EQ(viability.size(), static_cast<size_t>(g.num_nodes()));

  for (TimePoint t = 0; t < g.timeline_length(); ++t) {
    // Definition: roots reach an alive match of every keyword; a node is
    // viable iff some root reaches it.
    uint64_t root_mask = 0;
    for (NodeId r = 0; r < g.num_nodes(); ++r) {
      if (!g.NodeAliveAt(r, t)) continue;
      bool all = true;
      for (const auto& list : matches) {
        bool any = false;
        for (const NodeId s : list) {
          if (g.NodeAliveAt(s, t) && OracleReaches(oracle, r, t, s)) {
            any = true;
            break;
          }
        }
        if (!any) {
          all = false;
          break;
        }
      }
      if (all) root_mask |= uint64_t{1} << r;
    }
    uint64_t viable_mask = 0;
    for (NodeId r = 0; r < g.num_nodes(); ++r) {
      if ((root_mask >> r) & 1) {
        viable_mask |= oracle[static_cast<size_t>(t)][static_cast<size_t>(r)];
      }
    }
    for (NodeId node = 0; node < g.num_nodes(); ++node) {
      ASSERT_EQ(viability[static_cast<size_t>(node)].Contains(t),
                ((viable_mask >> node) & 1) != 0)
          << context << ": viability witness (node=" << node << ", t=" << t
          << ", keywords=" << num_keywords << ")";
    }
  }
}

/// Brute-force snapshot distances under the search convention, EXCLUDING
/// the start node's weight: D[u][v] = min over paths u -> v in G_t of
/// sum(edge weight + entered-node weight), D[u][u] = 0 for alive u,
/// +infinity otherwise. Floyd-Warshall per instant (n <= 16 here).
std::vector<std::vector<double>> SnapshotDistances(const TemporalGraph& g,
                                                   TimePoint t) {
  const double kInf = std::numeric_limits<double>::infinity();
  const auto n = static_cast<size_t>(g.num_nodes());
  std::vector<std::vector<double>> d(n, std::vector<double>(n, kInf));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.NodeAliveAt(u, t)) d[static_cast<size_t>(u)][static_cast<size_t>(u)] = 0.0;
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!g.EdgeAliveAt(e, t)) continue;
    const NodeId src = g.edge(e).src, dst = g.edge(e).dst;
    if (!g.NodeAliveAt(src, t) || !g.NodeAliveAt(dst, t)) continue;
    const double cost = g.edge(e).weight + g.node(dst).weight;
    auto& cell = d[static_cast<size_t>(src)][static_cast<size_t>(dst)];
    cell = std::min(cell, cost);
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (d[i][k] == kInf) continue;
      for (size_t j = 0; j < n; ++j) {
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
      }
    }
  }
  return d;
}

/// DistanceLowerBound contract against the brute snapshot metric: +infinity
/// exactly on unreachable pairs, w(u) on the diagonal, and never above the
/// true cheapest path weight anywhere else. The match-set overload must be
/// the min of the single-target probes.
void CheckDistanceBounds(const TemporalGraph& g, Rng* rng,
                         const std::string& context) {
  const ReachabilityIndex& index = g.reachability();
  const double kInf = std::numeric_limits<double>::infinity();
  for (TimePoint t = 0; t < g.timeline_length(); ++t) {
    const auto d = SnapshotDistances(g, t);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        const double bound = index.DistanceLowerBound(u, t, v);
        const double truth =
            d[static_cast<size_t>(u)][static_cast<size_t>(v)];
        if (truth == kInf) {
          ASSERT_EQ(bound, kInf)
              << context << ": finite bound on unreachable (u=" << u
              << ", t=" << t << ", v=" << v << ")";
        } else if (u == v) {
          ASSERT_DOUBLE_EQ(bound, g.node(u).weight) << context;
        } else {
          ASSERT_LE(bound, g.node(u).weight + truth + 1e-9)
              << context << ": inadmissible distance bound (u=" << u
              << ", t=" << t << ", v=" << v << ", true "
              << g.node(u).weight + truth << ")";
          ASSERT_GE(bound, 0.0) << context;
        }
      }
      // Match-set overload == min over singles, on a random target set.
      std::vector<NodeId> targets;
      const size_t count = 1 + rng->Uniform(4);
      for (size_t i = 0; i < count; ++i) {
        targets.push_back(static_cast<NodeId>(
            rng->Uniform(static_cast<uint64_t>(g.num_nodes()))));
      }
      double expected = kInf;
      for (const NodeId v : targets) {
        expected = std::min(expected, index.DistanceLowerBound(u, t, v));
      }
      ASSERT_EQ(index.DistanceLowerBound(u, t, targets), expected)
          << context << ": match-set overload (u=" << u << ", t=" << t
          << ")";
    }
  }
}

/// ComputeGuidance against its per-instant definition, computed with the
/// brute snapshot metric: root_bound[n] = min over alive instants of
/// w(n) + max_j (min over alive matches s of D[n][s]); cone_floor[n] = min
/// over instants and over roots r reaching n of root_bound-at-that-instant.
/// The guidance Dijkstra is exact per epoch, so this is an EQUALITY check,
/// not just admissibility.
void CheckGuidance(const TemporalGraph& g, Rng* rng,
                   const std::string& context) {
  const ReachabilityIndex& index = g.reachability();
  const double kInf = std::numeric_limits<double>::infinity();
  const size_t num_keywords = 1 + rng->Uniform(3);
  std::vector<std::vector<NodeId>> matches(num_keywords);
  for (auto& list : matches) {
    const size_t count = 1 + rng->Uniform(3);
    for (size_t i = 0; i < count; ++i) {
      list.push_back(static_cast<NodeId>(
          rng->Uniform(static_cast<uint64_t>(g.num_nodes()))));
    }
  }

  ReachabilityIndex::GuidanceData guidance;
  index.ComputeGuidance(g, matches, &guidance);
  const auto n = static_cast<size_t>(g.num_nodes());
  ASSERT_EQ(guidance.root_bound.size(), n);
  ASSERT_EQ(guidance.cone_floor.size(), n);

  std::vector<double> expected_root(n, kInf), expected_cone(n, kInf);
  for (TimePoint t = 0; t < g.timeline_length(); ++t) {
    const auto d = SnapshotDistances(g, t);
    std::vector<double> root_at_t(n, kInf);
    for (NodeId r = 0; r < g.num_nodes(); ++r) {
      if (!g.NodeAliveAt(r, t)) continue;
      double maxd = 0.0;
      for (const auto& list : matches) {
        double best = kInf;
        for (const NodeId s : list) {
          if (g.NodeAliveAt(s, t)) {
            best = std::min(
                best, d[static_cast<size_t>(r)][static_cast<size_t>(s)]);
          }
        }
        maxd = std::max(maxd, best);
      }
      root_at_t[static_cast<size_t>(r)] = g.node(r).weight + maxd;
      expected_root[static_cast<size_t>(r)] =
          std::min(expected_root[static_cast<size_t>(r)],
                   root_at_t[static_cast<size_t>(r)]);
    }
    for (NodeId node = 0; node < g.num_nodes(); ++node) {
      for (NodeId r = 0; r < g.num_nodes(); ++r) {
        if (d[static_cast<size_t>(r)][static_cast<size_t>(node)] == kInf) {
          continue;  // r does not reach node at t
        }
        expected_cone[static_cast<size_t>(node)] =
            std::min(expected_cone[static_cast<size_t>(node)],
                     root_at_t[static_cast<size_t>(r)]);
      }
    }
  }
  for (NodeId node = 0; node < g.num_nodes(); ++node) {
    ASSERT_DOUBLE_EQ(guidance.root_bound[static_cast<size_t>(node)],
                     expected_root[static_cast<size_t>(node)])
        << context << ": root_bound witness (node=" << node
        << ", keywords=" << num_keywords << ")";
    ASSERT_DOUBLE_EQ(guidance.cone_floor[static_cast<size_t>(node)],
                     expected_cone[static_cast<size_t>(node)])
        << context << ": cone_floor witness (node=" << node
        << ", keywords=" << num_keywords << ")";
  }
}

class ReachabilityOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReachabilityOracleTest, EveryTripleMatchesSnapshotBfs) {
  Rng rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    const TimePoint horizon = 4 + static_cast<TimePoint>(rng.Uniform(5));
    const int num_nodes = 8 + static_cast<int>(rng.Uniform(8));
    const int num_edges = 2 * num_nodes + static_cast<int>(rng.Uniform(10));
    const TemporalGraph g = RandomGraph(&rng, num_nodes, num_edges, horizon);
    const std::string context = "seed " + std::to_string(GetParam()) +
                                " round " + std::to_string(round);
    CheckAllTriples(g, context);
    CheckProperties(g, &rng, context);
    CheckViability(g, &rng, context);
    CheckDistanceBounds(g, &rng, context);
    CheckGuidance(g, &rng, context);
  }
}

// 10 seeds x 6 rounds = 60 random graphs, mirroring the reducibility suite.
INSTANTIATE_TEST_SUITE_P(Seeds, ReachabilityOracleTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99,
                                           110));

TEST(ReachabilityIndexTest, BuildIsDeterministic) {
  Rng rng(321);
  const TemporalGraph g = RandomGraph(&rng, 14, 30, 7);
  const ReachabilityIndex rebuilt = ReachabilityIndex::Build(g);
  EXPECT_TRUE(g.reachability().IdenticalTo(rebuilt));
  EXPECT_GT(g.reachability().stats().epochs, 0);
  EXPECT_GE(g.reachability().stats().build_seconds, 0.0);
}

TEST(ReachabilityIndexTest, SerializationRoundTripIsByteIdentical) {
  Rng rng(654);
  for (int round = 0; round < 4; ++round) {
    const TemporalGraph g = RandomGraph(&rng, 12, 24, 6);
    std::ostringstream first;
    ASSERT_TRUE(graph::SaveGraphBinary(g, first).ok());

    std::istringstream in(first.str());
    auto loaded = graph::LoadGraphBinary(in);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    // The loaded graph carries the persisted labels verbatim...
    EXPECT_TRUE(loaded->reachability().IdenticalTo(g.reachability()))
        << "round " << round;
    // ...and re-saving reproduces the archive byte for byte.
    std::ostringstream second;
    ASSERT_TRUE(graph::SaveGraphBinary(loaded.value(), second).ok());
    EXPECT_EQ(first.str(), second.str()) << "round " << round;
  }
}

TEST(ReachabilityIndexTest, SingleChainGraphHasPerfectLabels) {
  GraphBuilder b(3, graph::ValidityPolicy::kStrict);
  const int n = 12;
  for (int i = 0; i < n; ++i) b.AddNode("n" + std::to_string(i));
  for (int i = 0; i + 1 < n; ++i) b.AddEdge(i, i + 1);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const ReachabilityIndex& index = g->reachability();
  EXPECT_EQ(index.num_epochs(), 1);
  EXPECT_EQ(index.stats().chains, 1);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(index.CanReach(u, 1, v), u <= v) << u << "->" << v;
    }
  }
}

TEST(ReachabilityIndexTest, CycleCollapsesToOneScc) {
  GraphBuilder b(2, graph::ValidityPolicy::kStrict);
  for (int i = 0; i < 5; ++i) b.AddNode("n" + std::to_string(i));
  for (int i = 0; i < 5; ++i) b.AddEdge(i, (i + 1) % 5);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = 0; v < 5; ++v) {
      EXPECT_TRUE(g->reachability().CanReach(u, 0, v));
    }
  }
  EXPECT_EQ(g->reachability().stats().sccs, 1);
}

TEST(ReachabilityIndexTest, GuidanceDegeneratesToTrivialFloors) {
  // No keywords, or more than kMaxViabilityKeywords: the floors must fall
  // back to root_bound = w(n), cone_floor = 0 (trivially admissible, so
  // guided search becomes a no-op instead of an error).
  Rng rng(987);
  const TemporalGraph g = RandomGraph(&rng, 10, 20, 5);
  const ReachabilityIndex& index = g.reachability();
  for (const size_t num_keywords :
       {size_t{0},
        static_cast<size_t>(ReachabilityIndex::kMaxViabilityKeywords) + 1}) {
    std::vector<std::vector<NodeId>> matches(num_keywords,
                                             std::vector<NodeId>{0});
    ReachabilityIndex::GuidanceData guidance;
    index.ComputeGuidance(g, matches, &guidance);
    ASSERT_EQ(guidance.root_bound.size(), static_cast<size_t>(g.num_nodes()));
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      EXPECT_DOUBLE_EQ(guidance.root_bound[static_cast<size_t>(n)],
                       g.node(n).weight)
          << "keywords=" << num_keywords << " node=" << n;
      EXPECT_DOUBLE_EQ(guidance.cone_floor[static_cast<size_t>(n)], 0.0)
          << "keywords=" << num_keywords << " node=" << n;
    }
  }
}

TEST(ReachabilityIndexTest, ProbesOutsideTimelineAreFalse) {
  GraphBuilder b(4, graph::ValidityPolicy::kStrict);
  b.AddNode("a");
  b.AddNode("b");
  b.AddEdge(0, 1);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->reachability().CanReach(0, -1, 1));
  EXPECT_FALSE(g->reachability().CanReach(0, 4, 1));
  EXPECT_EQ(g->reachability().EarliestArrival(0, 4, 1),
            temporal::kNoTimePoint);
  EXPECT_EQ(g->reachability().EarliestArrival(0, -3, 1), 0);
}

}  // namespace
}  // namespace tgks
