#include "graph/serialization.h"

#include <sstream>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "testutil/paper_graphs.h"

namespace tgks::graph {
namespace {

using temporal::Interval;
using temporal::IntervalSet;

TEST(ValidityLiteralTest, ParseSingleInterval) {
  auto r = ParseValidity("@[2,5]", 10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, IntervalSet(Interval(2, 5)));
}

TEST(ValidityLiteralTest, ParseMultipleIntervals) {
  auto r = ParseValidity("@[0,1][4,4][8,9]", 10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (IntervalSet{{0, 1}, {4, 4}, {8, 9}}));
}

TEST(ValidityLiteralTest, ParseStar) {
  auto r = ParseValidity("@*", 7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, IntervalSet::All(7));
}

TEST(ValidityLiteralTest, RejectsMalformed) {
  for (const char* bad : {"", "[0,1]", "@", "@[1,0]", "@[a,b]", "@[0,1",
                          "@(0,1)", "@[0,1]x"}) {
    EXPECT_FALSE(ParseValidity(bad, 10).ok()) << bad;
  }
}

TEST(ValidityLiteralTest, FormatRoundTrip) {
  const IntervalSet sets[] = {
      IntervalSet{{0, 3}},
      IntervalSet{{0, 1}, {5, 6}},
      IntervalSet::All(10),
  };
  for (const auto& s : sets) {
    auto parsed = ParseValidity(FormatValidity(s, 10), 10);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, s);
  }
}

TEST(SerializationTest, SaveLoadRoundTrip) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  std::ostringstream out;
  ASSERT_TRUE(SaveGraph(g, out).ok());
  std::istringstream in(out.str());
  auto loaded = LoadGraph(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->num_nodes(), g.num_nodes());
  ASSERT_EQ(loaded->num_edges(), g.num_edges());
  EXPECT_EQ(loaded->timeline_length(), g.timeline_length());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(loaded->node(n).label, g.node(n).label);
    EXPECT_EQ(loaded->node(n).validity, g.node(n).validity);
    EXPECT_DOUBLE_EQ(loaded->node(n).weight, g.node(n).weight);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(loaded->edge(e).src, g.edge(e).src);
    EXPECT_EQ(loaded->edge(e).dst, g.edge(e).dst);
    EXPECT_EQ(loaded->edge(e).validity, g.edge(e).validity);
  }
}

TEST(SerializationTest, LabelsWithSpacesSurvive) {
  GraphBuilder b(5);
  b.AddNode("Keyword Search on Temporal Graphs", IntervalSet{{0, 4}});
  b.AddNode("J. Gray", IntervalSet{{1, 3}});
  b.AddEdge(0, 1);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  std::ostringstream out;
  ASSERT_TRUE(SaveGraph(*g, out).ok());
  std::istringstream in(out.str());
  auto loaded = LoadGraph(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->node(0).label, "Keyword Search on Temporal Graphs");
  EXPECT_EQ(loaded->node(1).label, "J. Gray");
}

TEST(SerializationTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "tgf 1\n"
      "# a comment\n"
      "\n"
      "timeline 5\n"
      "node 0 0 @[0,4] a\n"
      "  # indented comment\n"
      "node 1 0 @[0,4] b\n"
      "edge 0 1 1 @[1,2]\n";
  std::istringstream in(text);
  auto g = LoadGraph(in);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->num_nodes(), 2);
  EXPECT_EQ(g->num_edges(), 1);
  EXPECT_EQ(g->edge(0).validity, IntervalSet(Interval(1, 2)));
}

TEST(SerializationTest, RejectsCorruptInputs) {
  const char* cases[] = {
      "",                                                // No header.
      "tgf 2\ntimeline 5\n",                             // Wrong version.
      "tgf 1\n",                                         // Missing timeline.
      "tgf 1\ntimeline 0\n",                             // Bad horizon.
      "tgf 1\ntimeline 5\nnode 1 0 @* a\n",              // Non-dense ids.
      "tgf 1\ntimeline 5\nnode 0 0 @* a\nedge 0 1 1 @*\n",  // Dangling edge.
      "tgf 1\ntimeline 5\nnode 0 x @* a\n",              // Bad weight.
      "tgf 1\ntimeline 5\nwhat 0\n",                     // Unknown record.
      "tgf 1\ntimeline 5\nnode 0 0 @[9,9] a\nnode 1 0 @* b\n"
      "edge 0 1 1 @[0,0]\n",  // Edge outside endpoint validity (strict).
  };
  for (const char* text : cases) {
    std::istringstream in(text);
    EXPECT_FALSE(LoadGraph(in).ok()) << text;
  }
}

TEST(BinarySerializationTest, RoundTrip) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(SaveGraphBinary(g, buffer).ok());
  auto loaded = LoadGraphBinary(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->num_nodes(), g.num_nodes());
  ASSERT_EQ(loaded->num_edges(), g.num_edges());
  EXPECT_EQ(loaded->timeline_length(), g.timeline_length());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(loaded->node(n).label, g.node(n).label);
    EXPECT_EQ(loaded->node(n).validity, g.node(n).validity);
    EXPECT_DOUBLE_EQ(loaded->node(n).weight, g.node(n).weight);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(loaded->edge(e).src, g.edge(e).src);
    EXPECT_EQ(loaded->edge(e).dst, g.edge(e).dst);
    EXPECT_EQ(loaded->edge(e).validity, g.edge(e).validity);
    EXPECT_DOUBLE_EQ(loaded->edge(e).weight, g.edge(e).weight);
  }
}

TEST(BinarySerializationTest, PreservesExoticValues) {
  GraphBuilder b(100);
  b.AddNode("weight\tand\nnewlines in labels survive binary",
            IntervalSet{{0, 3}, {50, 99}}, 0.125);
  b.AddNode("", IntervalSet{{7, 7}, {50, 60}}, 1e300);
  b.AddEdge(0, 1, IntervalSet{{50, 55}}, 3.5);
  auto g = b.Build();
  ASSERT_TRUE(g.ok()) << g.status();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(SaveGraphBinary(*g, buffer).ok());
  auto loaded = LoadGraphBinary(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->node(0).label,
            "weight\tand\nnewlines in labels survive binary");
  EXPECT_DOUBLE_EQ(loaded->node(1).weight, 1e300);
  EXPECT_EQ(loaded->edge(0).validity, g->edge(0).validity);
}

TEST(BinarySerializationTest, RejectsCorruptInput) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(SaveGraphBinary(g, buffer).ok());
  const std::string blob = buffer.str();
  // Wrong magic.
  {
    std::string bad = blob;
    bad[0] = 'X';
    std::istringstream in(bad, std::ios::binary);
    EXPECT_EQ(LoadGraphBinary(in).status().code(), StatusCode::kCorruption);
  }
  // Truncations at every prefix length must error, never crash.
  for (const size_t cut : {0ul, 3ul, 9ul, 17ul, blob.size() / 2}) {
    std::istringstream in(blob.substr(0, cut), std::ios::binary);
    EXPECT_FALSE(LoadGraphBinary(in).ok()) << cut;
  }
  // Implausible node count.
  {
    std::string bad = blob;
    bad[12] = '\xFF';
    bad[13] = '\xFF';
    bad[14] = '\xFF';
    bad[15] = '\x7F';
    std::istringstream in(bad, std::ios::binary);
    EXPECT_FALSE(LoadGraphBinary(in).ok());
  }
}

TEST(BinarySerializationTest, FileRoundTrip) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const std::string path = ::testing::TempDir() + "/social.tgb";
  ASSERT_TRUE(SaveGraphBinaryToFile(g, path).ok());
  auto loaded = LoadGraphBinaryFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), g.num_nodes());
  EXPECT_FALSE(LoadGraphBinaryFromFile(path + ".missing").ok());
}

TEST(SerializationTest, FileRoundTrip) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const std::string path = ::testing::TempDir() + "/social.tgf";
  ASSERT_TRUE(SaveGraphToFile(g, path).ok());
  auto loaded = LoadGraphFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), g.num_nodes());
  EXPECT_FALSE(LoadGraphFromFile(path + ".missing").ok());
}

}  // namespace
}  // namespace tgks::graph
