#include "graph/snapshot.h"

#include <gtest/gtest.h>

#include "testutil/paper_graphs.h"

namespace tgks::graph {
namespace {

TEST(SnapshotTest, FiltersNodesByInstant) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const Snapshot at0(g, 0);
  EXPECT_TRUE(at0.NodeAlive(ids.mary));
  EXPECT_FALSE(at0.NodeAlive(ids.bob));  // Bob joins at t2.
  const Snapshot at7(g, 7);
  EXPECT_TRUE(at7.NodeAlive(ids.bob));
  EXPECT_FALSE(at7.NodeAlive(ids.mike));  // Mike leaves after t5.
}

TEST(SnapshotTest, AliveListsMatchPointQueries) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  for (temporal::TimePoint t = 0; t < g.timeline_length(); ++t) {
    const Snapshot snap(g, t);
    size_t alive_nodes = 0, alive_edges = 0;
    for (NodeId n = 0; n < g.num_nodes(); ++n) alive_nodes += snap.NodeAlive(n);
    for (EdgeId e = 0; e < g.num_edges(); ++e) alive_edges += snap.EdgeAlive(e);
    EXPECT_EQ(snap.AliveNodes().size(), alive_nodes);
    EXPECT_EQ(snap.AliveEdges().size(), alive_edges);
  }
}

TEST(SnapshotTest, EdgeAliveImpliesEndpointsAlive) {
  // The §2.2 invariant must survive construction: whenever an edge is alive,
  // both endpoints are.
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  for (temporal::TimePoint t = 0; t < g.timeline_length(); ++t) {
    const Snapshot snap(g, t);
    for (EdgeId e : snap.AliveEdges()) {
      EXPECT_TRUE(snap.NodeAlive(g.edge(e).src));
      EXPECT_TRUE(snap.NodeAlive(g.edge(e).dst));
    }
  }
}

TEST(SnapshotTest, IntroFactsHoldOnFig1Fixture) {
  // Mary-Bob-Ross-John exists at t6/t7 only; Mary-Bob-Mike-Jim-John at t4.
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  auto edge_between = [&](NodeId u, NodeId v) -> EdgeId {
    for (EdgeId e : g.OutEdges(u)) {
      if (g.edge(e).dst == v) return e;
    }
    return kInvalidEdge;
  };
  auto path_alive_at = [&](const std::vector<NodeId>& path,
                           temporal::TimePoint t) {
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      const EdgeId e = edge_between(path[i], path[i + 1]);
      if (e == kInvalidEdge || !g.EdgeAliveAt(e, t)) return false;
    }
    return true;
  };
  const std::vector<NodeId> via_ross = {ids.mary, ids.bob, ids.ross, ids.john};
  const std::vector<NodeId> via_mike = {ids.mary, ids.bob, ids.mike, ids.jim,
                                        ids.john};
  const std::vector<NodeId> via_msft = {ids.mary, ids.microsoft, ids.john};
  for (temporal::TimePoint t = 0; t < 8; ++t) {
    EXPECT_EQ(path_alive_at(via_ross, t), t == 6 || t == 7) << t;
    EXPECT_EQ(path_alive_at(via_mike, t), t == 4) << t;
    EXPECT_FALSE(path_alive_at(via_msft, t)) << t;
  }
}

}  // namespace
}  // namespace tgks::graph
