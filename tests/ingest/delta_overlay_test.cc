// Unit tests for the DeltaOverlay append layer (src/graph/delta_overlay.h):
// id routing, Extend chaining, per-destination in-edge runs in ascending
// edge-id order, delta postings, and the approximate footprint counter.

#include "graph/delta_overlay.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "graph/temporal_graph.h"
#include "temporal/interval_set.h"

namespace tgks::graph {
namespace {

using temporal::IntervalSet;

TemporalGraph MakeBase() {
  GraphBuilder b(/*timeline_length=*/10);
  const IntervalSet always{{0, 9}};
  b.AddNode("alpha", always, 1.0);           // id 0
  b.AddNode("beta", always, 2.0);            // id 1
  b.AddNode("gamma shared", always, 3.0);    // id 2
  b.AddEdge(0, 1, always, 1.0);              // edge 0
  b.AddEdge(1, 2, always, 2.0);              // edge 1
  return std::move(b.Build()).value();
}

Node MakeNode(const std::string& label, double weight,
              const IntervalSet& validity) {
  Node n;
  n.label = label;
  n.weight = weight;
  n.validity = validity;
  return n;
}

Edge MakeEdge(NodeId src, NodeId dst, double weight,
              const IntervalSet& validity) {
  Edge e;
  e.src = src;
  e.dst = dst;
  e.weight = weight;
  e.validity = validity;
  return e;
}

TEST(DeltaOverlayTest, RoutesIdsBetweenBaseAndDelta) {
  const TemporalGraph base = MakeBase();
  const IntervalSet always{{0, 9}};
  auto overlay = DeltaOverlay::Extend(
      base, nullptr, {MakeNode("delta node", 5.0, always)},
      {MakeEdge(0, 3, 7.0, always)});

  EXPECT_EQ(overlay->base_num_nodes(), 3);
  EXPECT_EQ(overlay->base_num_edges(), 2);
  EXPECT_EQ(overlay->num_delta_nodes(), 1);
  EXPECT_EQ(overlay->num_delta_edges(), 1);
  EXPECT_EQ(overlay->total_nodes(), 4);
  EXPECT_EQ(overlay->total_edges(), 3);
  EXPECT_FALSE(overlay->empty());

  EXPECT_FALSE(overlay->IsDeltaNode(2));
  EXPECT_TRUE(overlay->IsDeltaNode(3));
  EXPECT_FALSE(overlay->IsDeltaEdge(1));
  EXPECT_TRUE(overlay->IsDeltaEdge(2));

  // NodeAt/EdgeAt route: base ids read the base SoA, delta ids the delta
  // vectors.
  EXPECT_EQ(overlay->NodeAt(base, 0).label, "alpha");
  EXPECT_EQ(overlay->NodeAt(base, 3).label, "delta node");
  EXPECT_EQ(overlay->NodeAt(base, 3).weight, 5.0);
  EXPECT_EQ(overlay->EdgeAt(base, 1).dst, 2);
  EXPECT_EQ(overlay->EdgeAt(base, 2).src, 0);
  EXPECT_EQ(overlay->EdgeAt(base, 2).weight, 7.0);
}

TEST(DeltaOverlayTest, EmptyOverlayIsEmpty) {
  const TemporalGraph base = MakeBase();
  auto overlay = DeltaOverlay::Extend(base, nullptr, {}, {});
  EXPECT_TRUE(overlay->empty());
  EXPECT_EQ(overlay->total_nodes(), base.num_nodes());
  EXPECT_EQ(overlay->total_edges(), base.num_edges());
}

TEST(DeltaOverlayTest, ExtendChainsAccumulateAndPredecessorIsUntouched) {
  const TemporalGraph base = MakeBase();
  const IntervalSet always{{0, 9}};
  auto first = DeltaOverlay::Extend(
      base, nullptr, {MakeNode("first wave", 1.0, always)},
      {MakeEdge(3, 0, 1.0, always)});
  auto second = DeltaOverlay::Extend(
      base, first.get(), {MakeNode("second wave", 2.0, always)},
      {MakeEdge(4, 0, 2.0, always)});

  // The successor holds the full accumulated delta...
  EXPECT_EQ(second->num_delta_nodes(), 2);
  EXPECT_EQ(second->num_delta_edges(), 2);
  EXPECT_EQ(second->NodeAt(base, 3).label, "first wave");
  EXPECT_EQ(second->NodeAt(base, 4).label, "second wave");
  // ...and the predecessor (a pinned reader's view) is untouched.
  EXPECT_EQ(first->num_delta_nodes(), 1);
  EXPECT_EQ(first->num_delta_edges(), 1);
  EXPECT_EQ(first->total_nodes(), 4);

  // Both delta edges target node 0: one run, ascending edge ids 2 then 3.
  const auto run = second->DeltaInSlots(0);
  ASSERT_EQ(run.end - run.begin, 2);
  EXPECT_EQ(second->edge_id(run.begin), 2);
  EXPECT_EQ(second->edge_id(run.begin + 1), 3);
  EXPECT_EQ(second->src(run.begin), 3);
  EXPECT_EQ(second->src(run.begin + 1), 4);
  EXPECT_EQ(second->edge_weight(run.begin), 1.0);
  EXPECT_EQ(second->edge_weight(run.begin + 1), 2.0);
}

TEST(DeltaOverlayTest, InRunsGroupByDestinationInEdgeIdOrder) {
  const TemporalGraph base = MakeBase();
  const IntervalSet always{{0, 9}};
  // Interleave destinations so grouping actually has to reorder slots:
  // edges 2,4 -> node 1 and edges 3,5 -> node 3 (a delta node).
  auto overlay = DeltaOverlay::Extend(
      base, nullptr, {MakeNode("target", 0.0, always)},
      {MakeEdge(0, 1, 1.0, always), MakeEdge(0, 3, 1.0, always),
       MakeEdge(2, 1, 1.0, always), MakeEdge(2, 3, 1.0, always)});

  const auto to_base = overlay->DeltaInSlots(1);
  ASSERT_EQ(to_base.end - to_base.begin, 2);
  EXPECT_EQ(overlay->edge_id(to_base.begin), 2);
  EXPECT_EQ(overlay->edge_id(to_base.begin + 1), 4);

  const auto to_delta = overlay->DeltaInSlots(3);
  ASSERT_EQ(to_delta.end - to_delta.begin, 2);
  EXPECT_EQ(overlay->edge_id(to_delta.begin), 3);
  EXPECT_EQ(overlay->edge_id(to_delta.begin + 1), 5);

  // A node with no delta in-edges gets the empty run.
  const auto none = overlay->DeltaInSlots(0);
  EXPECT_EQ(none.begin, none.end);
}

TEST(DeltaOverlayTest, SlotTemporalAccessorsReadEdgeValidity) {
  const TemporalGraph base = MakeBase();
  auto overlay = DeltaOverlay::Extend(
      base, nullptr, {}, {MakeEdge(0, 1, 1.0, IntervalSet{{2, 5}})});
  const auto run = overlay->DeltaInSlots(1);
  ASSERT_EQ(run.end - run.begin, 1);
  EXPECT_TRUE(overlay->EdgeAliveAt(run.begin, 3));
  EXPECT_FALSE(overlay->EdgeAliveAt(run.begin, 6));

  IntervalSet out;
  overlay->IntersectEdgeValidity(run.begin, IntervalSet{{4, 9}}, &out);
  EXPECT_TRUE(out == IntervalSet({{4, 5}})) << out.ToString();

  overlay->WithEdgeValidity(run.begin, [](const IntervalSet& v) {
    EXPECT_TRUE(v == IntervalSet({{2, 5}}));
  });
}

TEST(DeltaOverlayTest, PostingsAreCaseFoldedPerWordAndAscending) {
  const TemporalGraph base = MakeBase();
  const IntervalSet always{{0, 9}};
  auto overlay = DeltaOverlay::Extend(
      base, nullptr,
      {MakeNode("Shared Topic", 0.0, always),   // id 3
       MakeNode("another topic", 0.0, always),  // id 4
       MakeNode("shared", 0.0, always)},        // id 5
      {});

  const auto shared = overlay->Postings("shared");
  ASSERT_EQ(shared.size(), 2u);
  EXPECT_EQ(shared[0], 3);
  EXPECT_EQ(shared[1], 5);
  // Every delta posting id is >= base_num_nodes(), so appending to a base
  // posting list preserves ascending order.
  EXPECT_GE(shared[0], overlay->base_num_nodes());

  const auto topic = overlay->Postings("topic");
  ASSERT_EQ(topic.size(), 2u);
  EXPECT_EQ(topic[0], 3);
  EXPECT_EQ(topic[1], 4);

  EXPECT_TRUE(overlay->Postings("absent").empty());
  // Postings takes an already-folded word; the raw mixed-case form of a
  // label word is not a key.
  EXPECT_TRUE(overlay->Postings("Shared").empty());
}

TEST(DeltaOverlayTest, ApproxBytesGrowsWithTheDelta) {
  const TemporalGraph base = MakeBase();
  const IntervalSet always{{0, 9}};
  auto small = DeltaOverlay::Extend(
      base, nullptr, {MakeNode("one", 0.0, always)}, {});
  auto big = DeltaOverlay::Extend(
      base, small.get(),
      {MakeNode("two with a considerably longer label string", 0.0, always),
       MakeNode("three", 0.0, always)},
      {MakeEdge(0, 3, 1.0, always), MakeEdge(1, 4, 1.0, always)});
  EXPECT_GT(small->ApproxBytes(), 0u);
  EXPECT_GT(big->ApproxBytes(), small->ApproxBytes());
}

}  // namespace
}  // namespace tgks::graph
