// Unit tests for the ingest wire format: parsing, static validation, and
// canonicalization of POST /v1/ingest bodies (src/ingest/ingest_batch.h).
// Every IngestErrorCode is exercised at least once, and canonicalization
// is pinned to GraphBuilder's kClamp conventions (merge + clip).

#include "ingest/ingest_batch.h"

#include <string>

#include <gtest/gtest.h>

#include "server/json_io.h"
#include "temporal/interval_set.h"

namespace tgks::ingest {
namespace {

using server::JsonValue;
using temporal::IntervalSet;

constexpr temporal::TimePoint kTimeline = 10;

std::optional<IngestBatch> Parse(const std::string& body,
                                 IngestErrorDetail* error) {
  auto doc = JsonValue::Parse(body);
  EXPECT_TRUE(doc.ok()) << body;
  return ParseIngestBatch(*doc, kTimeline, error);
}

TEST(IngestBatchTest, ParsesNodesAndEdgesWithDefaults) {
  IngestErrorDetail error;
  const auto batch = Parse(
      R"({"nodes": [{"label": "alice smith"}],
          "edges": [{"src": 3, "dst_new": 0}]})",
      &error);
  ASSERT_TRUE(batch.has_value()) << error.message;
  ASSERT_EQ(batch->nodes.size(), 1u);
  EXPECT_EQ(batch->nodes[0].label, "alice smith");
  EXPECT_EQ(batch->nodes[0].weight, 0.0);  // Node weight default.
  // Omitted node validity = the whole timeline.
  EXPECT_TRUE(batch->nodes[0].validity == IntervalSet::All(kTimeline));
  ASSERT_EQ(batch->edges.size(), 1u);
  EXPECT_EQ(batch->edges[0].src, 3);
  EXPECT_EQ(batch->edges[0].src_new, -1);
  EXPECT_EQ(batch->edges[0].dst_new, 0);
  EXPECT_EQ(batch->edges[0].weight, 1.0);  // Edge weight default.
  // Omitted edge validity stays unset: resolved to the endpoint
  // intersection at apply time, not here.
  EXPECT_FALSE(batch->edges[0].validity.has_value());
}

TEST(IngestBatchTest, EmptyBodyYieldsEmptyBatch) {
  IngestErrorDetail error;
  const auto batch = Parse("{}", &error);
  ASSERT_TRUE(batch.has_value());
  EXPECT_TRUE(batch->empty());
}

TEST(IngestBatchTest, CanonicalizesOverlappingUnsortedIntervals) {
  IngestErrorDetail error;
  const auto batch = Parse(
      R"({"nodes": [{"label": "n",
                     "validity": [[6, 8], [0, 3], [2, 5]]}]})",
      &error);
  ASSERT_TRUE(batch.has_value()) << error.message;
  // [0,3] ∪ [2,5] merge; [6,8] stays separate (not adjacent to 5? 5 and 6
  // ARE adjacent instants, so the normalizing constructor coalesces them).
  const IntervalSet expected{{0, 8}};
  EXPECT_TRUE(batch->nodes[0].validity == expected)
      << batch->nodes[0].validity.ToString();
}

TEST(IngestBatchTest, ClipsValidityToTimeline) {
  IngestErrorDetail error;
  const auto batch = Parse(
      R"({"nodes": [{"label": "n", "validity": [[-4, 2], [8, 99]]}],
          "edges": [{"src": 0, "dst": 1, "validity": [[40, 50]]}]})",
      &error);
  ASSERT_TRUE(batch.has_value()) << error.message;
  const IntervalSet expected{{0, 2}, {8, 9}};
  EXPECT_TRUE(batch->nodes[0].validity == expected)
      << batch->nodes[0].validity.ToString();
  // An interval entirely outside the timeline contributes nothing; the
  // explicitly-empty edge validity survives to apply time (where it
  // becomes edge-never-valid).
  ASSERT_TRUE(batch->edges[0].validity.has_value());
  EXPECT_TRUE(batch->edges[0].validity->IsEmpty());
}

TEST(IngestBatchTest, RejectsNonObjectBody) {
  IngestErrorDetail error;
  EXPECT_FALSE(Parse("[1, 2]", &error).has_value());
  EXPECT_EQ(error.code, IngestErrorCode::kBadShape);
  EXPECT_EQ(error.field, "");
  EXPECT_EQ(error.offset, -1);
}

TEST(IngestBatchTest, RejectsNonArrayNodesAndEdges) {
  IngestErrorDetail error;
  EXPECT_FALSE(Parse(R"({"nodes": 7})", &error).has_value());
  EXPECT_EQ(error.code, IngestErrorCode::kBadShape);
  EXPECT_EQ(error.field, "nodes");

  EXPECT_FALSE(Parse(R"({"edges": {}})", &error).has_value());
  EXPECT_EQ(error.code, IngestErrorCode::kBadShape);
  EXPECT_EQ(error.field, "edges");
}

TEST(IngestBatchTest, RejectsNodeWithoutLabel) {
  IngestErrorDetail error;
  EXPECT_FALSE(
      Parse(R"({"nodes": [{"label": "ok"}, {"weight": 1}]})", &error)
          .has_value());
  EXPECT_EQ(error.code, IngestErrorCode::kBadShape);
  EXPECT_EQ(error.field, "nodes");
  EXPECT_EQ(error.offset, 1);  // The second element broke the rule.
}

TEST(IngestBatchTest, RejectsMalformedValidityShapes) {
  IngestErrorDetail error;
  EXPECT_FALSE(
      Parse(R"({"nodes": [{"label": "n", "validity": 3}]})", &error)
          .has_value());
  EXPECT_EQ(error.code, IngestErrorCode::kBadShape);

  EXPECT_FALSE(
      Parse(R"({"nodes": [{"label": "n", "validity": [[1, 2, 3]]}]})", &error)
          .has_value());
  EXPECT_EQ(error.code, IngestErrorCode::kBadShape);

  EXPECT_FALSE(
      Parse(R"({"nodes": [{"label": "n", "validity": [[1, "x"]]}]})", &error)
          .has_value());
  EXPECT_EQ(error.code, IngestErrorCode::kBadShape);
}

TEST(IngestBatchTest, RejectsIntervalOrderViolation) {
  IngestErrorDetail error;
  EXPECT_FALSE(
      Parse(R"({"edges": [{"src": 0, "dst": 1, "validity": [[5, 2]]}]})",
            &error)
          .has_value());
  EXPECT_EQ(error.code, IngestErrorCode::kIntervalOrder);
  EXPECT_EQ(error.field, "edges");
  EXPECT_EQ(error.offset, 0);
}

TEST(IngestBatchTest, RejectsNonFiniteWeight) {
  IngestErrorDetail error;
  // 1e999 overflows double parsing to infinity.
  EXPECT_FALSE(
      Parse(R"({"nodes": [{"label": "n", "weight": 1e999}]})", &error)
          .has_value());
  EXPECT_EQ(error.code, IngestErrorCode::kWeightNotFinite);
}

TEST(IngestBatchTest, RejectsNegativeWeight) {
  IngestErrorDetail error;
  EXPECT_FALSE(
      Parse(R"({"edges": [{"src": 0, "dst": 1, "weight": -0.5}]})", &error)
          .has_value());
  EXPECT_EQ(error.code, IngestErrorCode::kWeightNegative);
  EXPECT_EQ(error.field, "edges");
}

TEST(IngestBatchTest, RejectsNonNumericWeight) {
  IngestErrorDetail error;
  EXPECT_FALSE(
      Parse(R"({"nodes": [{"label": "n", "weight": "heavy"}]})", &error)
          .has_value());
  EXPECT_EQ(error.code, IngestErrorCode::kBadShape);
}

TEST(IngestBatchTest, RejectsBothOrNeitherEndpointForm) {
  IngestErrorDetail error;
  EXPECT_FALSE(
      Parse(R"({"edges": [{"src": 0, "src_new": 0, "dst": 1}]})", &error)
          .has_value());
  EXPECT_EQ(error.code, IngestErrorCode::kBadNodeRef);

  EXPECT_FALSE(Parse(R"({"edges": [{"dst": 1}]})", &error).has_value());
  EXPECT_EQ(error.code, IngestErrorCode::kBadNodeRef);
}

TEST(IngestBatchTest, RejectsNegativeOrNonIntegerEndpoint) {
  IngestErrorDetail error;
  EXPECT_FALSE(
      Parse(R"({"edges": [{"src": -1, "dst": 1}]})", &error).has_value());
  EXPECT_EQ(error.code, IngestErrorCode::kBadNodeRef);

  EXPECT_FALSE(
      Parse(R"({"edges": [{"src": "zero", "dst": 1}]})", &error).has_value());
  EXPECT_EQ(error.code, IngestErrorCode::kBadNodeRef);
}

TEST(IngestBatchTest, RejectsBatchRelativeRefBeyondBatch) {
  IngestErrorDetail error;
  EXPECT_FALSE(
      Parse(R"({"nodes": [{"label": "n"}],
                "edges": [{"src_new": 1, "dst": 0}]})",
            &error)
          .has_value());
  EXPECT_EQ(error.code, IngestErrorCode::kBadNodeRef);
  EXPECT_EQ(error.field, "edges");
  EXPECT_EQ(error.offset, 0);
}

TEST(IngestBatchTest, ErrorCodeNamesAreStable) {
  // The names are the wire-visible `code` field of the structured error
  // body; renaming one is a breaking API change.
  EXPECT_EQ(IngestErrorCodeName(IngestErrorCode::kBadShape), "bad-shape");
  EXPECT_EQ(IngestErrorCodeName(IngestErrorCode::kIntervalOrder),
            "interval-order");
  EXPECT_EQ(IngestErrorCodeName(IngestErrorCode::kWeightNotFinite),
            "weight-not-finite");
  EXPECT_EQ(IngestErrorCodeName(IngestErrorCode::kWeightNegative),
            "weight-negative");
  EXPECT_EQ(IngestErrorCodeName(IngestErrorCode::kBadNodeRef), "bad-node-ref");
  EXPECT_EQ(IngestErrorCodeName(IngestErrorCode::kEdgeNeverValid),
            "edge-never-valid");
}

}  // namespace
}  // namespace tgks::ingest
