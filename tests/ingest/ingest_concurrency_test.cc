// Concurrency hammer for LiveGraph, meant to run under TSan: concurrent
// ingest writers, a policy-driven background compactor, and search readers
// that pin snapshots mid-publish. The readers assert atomicity — every
// acquired snapshot is internally consistent (never a half-published
// batch), and a search through it sees exactly the nodes that snapshot
// claims to hold.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "ingest/live_graph.h"
#include "search/search_engine.h"
#include "temporal/interval_set.h"

namespace tgks::ingest {
namespace {

using temporal::IntervalSet;

constexpr graph::NodeId kBaseNodes = 3;
constexpr graph::EdgeId kBaseEdges = 2;
constexpr int kWriters = 3;
constexpr int kBatchesPerWriter = 40;
constexpr int kReaders = 3;

graph::TemporalGraph MakeBase() {
  graph::GraphBuilder b(/*timeline_length=*/8);
  const IntervalSet always{{0, 7}};
  b.AddNode("left", always, 1.0);
  b.AddNode("mid", always, 1.0);
  b.AddNode("right", always, 1.0);
  b.AddEdge(0, 1, always, 1.0);
  b.AddEdge(1, 2, always, 1.0);
  return std::move(b.Build()).value();
}

/// Every batch appends exactly one "live"-labeled node plus one edge from
/// base node 0 to it, so any consistent snapshot satisfies
///   delta_nodes == delta_edges == (number of fully applied batches)
/// and a half-published batch would break the node/edge balance.
IngestBatch MakeBatch(int writer, int tick) {
  IngestBatch batch;
  IngestNode node;
  node.label =
      "live w" + std::to_string(writer) + " t" + std::to_string(tick);
  node.weight = 1.0;
  node.validity = IntervalSet{{0, 7}};
  batch.nodes.push_back(std::move(node));
  IngestEdge edge;
  edge.src = 0;
  edge.dst_new = 0;
  batch.edges.push_back(edge);
  return batch;
}

TEST(IngestConcurrencyTest, ConcurrentIngestCompactionAndSearch) {
  CompactionPolicy policy;
  policy.background = true;
  policy.max_delta_bytes = 4 * 1024;  // Compact often under the hammer.
  policy.max_delta_age_ms = 0;
  policy.poll_interval_ms = 1;
  LiveGraph live(MakeBase(), policy);

  std::atomic<bool> done{false};
  std::atomic<int64_t> rejected{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&live, &rejected, w] {
      for (int t = 0; t < kBatchesPerWriter; ++t) {
        IngestErrorDetail error;
        if (!live.Apply(MakeBatch(w, t), &error).ok()) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  std::vector<int64_t> reads(kReaders, 0);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&live, &done, &reads, r] {
      uint64_t last_generation = 0;
      search::Query query;
      query.keywords = {"live"};
      search::SearchOptions options;
      options.k = 0;  // Exhaustive: one result per matching node.
      while (!done.load(std::memory_order_acquire)) {
        const GraphSnapshotHandle snap = live.Acquire();
        // Publishes are ordered: a later acquire never sees an older head.
        ASSERT_GE(snap->generation, last_generation);
        last_generation = snap->generation;

        // Atomicity: each batch lands whole, so nodes and edges added
        // since the base balance exactly.
        const graph::NodeId delta_nodes = snap->total_nodes() - kBaseNodes;
        const graph::EdgeId delta_edges = snap->total_edges() - kBaseEdges;
        ASSERT_EQ(delta_nodes, delta_edges)
            << "half-published batch at generation " << snap->generation;

        // A search through the pinned snapshot sees exactly its nodes —
        // racing publishes and compactions must not leak into the view.
        search::SearchEngine engine(*snap->graph, snap->index.get());
        search::SearchOptions pinned = options;
        pinned.overlay = snap->overlay_or_null();
        const auto response = engine.Search(query, pinned);
        ASSERT_TRUE(response.ok());
        ASSERT_EQ(static_cast<graph::NodeId>(response->results.size()),
                  delta_nodes)
            << "generation " << snap->generation;
        ++reads[static_cast<size_t>(r)];
      }
    });
  }

  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(rejected.load(), 0);
  for (int r = 0; r < kReaders; ++r) {
    EXPECT_GT(reads[static_cast<size_t>(r)], 0) << "reader " << r;
  }

  // Quiesce: a final manual compact folds whatever the background thread
  // had not, and the folded graph holds every ingested node.
  ASSERT_TRUE(live.Compact(/*manual=*/true).ok());
  const GraphSnapshotHandle final_snap = live.Acquire();
  EXPECT_EQ(final_snap->overlay, nullptr);
  EXPECT_EQ(final_snap->graph->num_nodes(),
            kBaseNodes + kWriters * kBatchesPerWriter);
  EXPECT_EQ(final_snap->graph->num_edges(),
            kBaseEdges + kWriters * kBatchesPerWriter);
  const IngestStats stats = live.ingest_stats();
  EXPECT_EQ(stats.batches, kWriters * kBatchesPerWriter);
  EXPECT_EQ(stats.nodes_added, kWriters * kBatchesPerWriter);
  EXPECT_EQ(stats.edges_added, kWriters * kBatchesPerWriter);
}

}  // namespace
}  // namespace tgks::ingest
