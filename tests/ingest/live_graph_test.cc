// Unit tests for the LiveGraph epoch/RCU publication layer
// (src/ingest/live_graph.h): snapshot pinning and isolation, apply-time
// validation semantics, overlay chaining, compaction equivalence, cache
// gating, and the publish hook.

#include "ingest/live_graph.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "graph/temporal_graph.h"
#include "search/search_engine.h"
#include "temporal/interval_set.h"

namespace tgks::ingest {
namespace {

using graph::NodeId;
using temporal::IntervalSet;

constexpr temporal::TimePoint kTimeline = 10;

/// Policy with the background thread off: every test drives compaction
/// explicitly so its assertions cannot race a policy-triggered fold.
CompactionPolicy ManualOnly() {
  CompactionPolicy policy;
  policy.background = false;
  return policy;
}

graph::TemporalGraph MakeBase() {
  graph::GraphBuilder b(kTimeline);
  const IntervalSet always{{0, 9}};
  b.AddNode("alice", always, 1.0);   // id 0
  b.AddNode("bob", always, 2.0);     // id 1
  b.AddNode("carol", always, 3.0);   // id 2
  b.AddEdge(0, 1, always, 1.0);      // edge 0
  b.AddEdge(1, 2, always, 1.0);      // edge 1
  return std::move(b.Build()).value();
}

IngestNode MakeNode(const std::string& label, const IntervalSet& validity,
                    double weight = 0.0) {
  IngestNode node;
  node.label = label;
  node.weight = weight;
  node.validity = validity;
  return node;
}

TEST(LiveGraphTest, BaseSnapshotBehavesLikeBuildOnce) {
  LiveGraph live(MakeBase(), ManualOnly());
  EXPECT_EQ(live.generation(), 0u);
  EXPECT_EQ(live.timeline_length(), kTimeline);
  EXPECT_EQ(live.delta_bytes(), 0u);

  const GraphSnapshotHandle snap = live.Acquire();
  EXPECT_EQ(snap->generation, 0u);
  EXPECT_EQ(snap->overlay, nullptr);
  EXPECT_EQ(snap->overlay_or_null(), nullptr);
  EXPECT_EQ(snap->total_nodes(), 3);
  EXPECT_EQ(snap->total_edges(), 2);
  EXPECT_NE(snap->graph, nullptr);
  EXPECT_NE(snap->index, nullptr);
}

TEST(LiveGraphTest, ApplyPublishesAndPinnedReadersAreIsolated) {
  LiveGraph live(MakeBase(), ManualOnly());
  const GraphSnapshotHandle before = live.Acquire();

  IngestBatch batch;
  batch.nodes.push_back(MakeNode("dave", IntervalSet{{2, 7}}, 4.0));
  IngestEdge edge;
  edge.src = 0;
  edge.dst_new = 0;
  batch.edges.push_back(edge);
  IngestErrorDetail error;
  const auto generation = live.Apply(batch, &error);
  ASSERT_TRUE(generation.ok()) << error.message;
  EXPECT_EQ(*generation, 1u);
  EXPECT_EQ(live.generation(), 1u);

  // The handle pinned before the publish still reads the old view...
  EXPECT_EQ(before->generation, 0u);
  EXPECT_EQ(before->total_nodes(), 3);
  // ...while a fresh acquire sees the delta.
  const GraphSnapshotHandle after = live.Acquire();
  EXPECT_EQ(after->generation, 1u);
  EXPECT_EQ(after->total_nodes(), 4);
  EXPECT_EQ(after->total_edges(), 3);
  ASSERT_NE(after->overlay_or_null(), nullptr);
  EXPECT_EQ(after->overlay->NodeAt(*after->graph, 3).label, "dave");
  EXPECT_GT(live.delta_bytes(), 0u);

  const IngestStats stats = live.ingest_stats();
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.nodes_added, 1);
  EXPECT_EQ(stats.edges_added, 1);
}

TEST(LiveGraphTest, ApplyClampsEdgeValidityToEndpoints) {
  LiveGraph live(MakeBase(), ManualOnly());
  IngestBatch batch;
  batch.nodes.push_back(MakeNode("dave", IntervalSet{{2, 6}}));
  IngestEdge defaulted;  // Omitted validity = endpoint intersection.
  defaulted.src = 0;
  defaulted.dst_new = 0;
  IngestEdge clamped;  // Explicit validity intersected with the endpoints'.
  clamped.src_new = 0;
  clamped.dst = 1;
  clamped.validity = IntervalSet{{4, 9}};
  batch.edges.push_back(defaulted);
  batch.edges.push_back(clamped);
  IngestErrorDetail error;
  ASSERT_TRUE(live.Apply(batch, &error).ok()) << error.message;

  const GraphSnapshotHandle snap = live.Acquire();
  // Base node 0 is valid [0,9]; dave is [2,6].
  EXPECT_TRUE(snap->overlay->EdgeAt(*snap->graph, 2).validity ==
              IntervalSet({{2, 6}}));
  EXPECT_TRUE(snap->overlay->EdgeAt(*snap->graph, 3).validity ==
              IntervalSet({{4, 6}}));
  // Batch-relative refs resolved against the pre-batch total (3 nodes).
  EXPECT_EQ(snap->overlay->EdgeAt(*snap->graph, 2).dst, 3);
  EXPECT_EQ(snap->overlay->EdgeAt(*snap->graph, 3).src, 3);
}

TEST(LiveGraphTest, ApplyRejectsWithoutPublishing) {
  LiveGraph live(MakeBase(), ManualOnly());

  IngestBatch bad_ref;
  IngestEdge edge;
  edge.src = 99;  // No such node.
  edge.dst = 0;
  bad_ref.edges.push_back(edge);
  IngestErrorDetail error;
  EXPECT_FALSE(live.Apply(bad_ref, &error).ok());
  EXPECT_EQ(error.code, IngestErrorCode::kBadNodeRef);
  EXPECT_EQ(error.field, "edges");
  EXPECT_EQ(error.offset, 0);

  IngestBatch never_valid;
  never_valid.nodes.push_back(MakeNode("early", IntervalSet{{0, 2}}));
  never_valid.nodes.push_back(MakeNode("late", IntervalSet{{7, 9}}));
  IngestEdge disjoint;  // Endpoint lifetimes never overlap.
  disjoint.src_new = 0;
  disjoint.dst_new = 1;
  never_valid.edges.push_back(disjoint);
  EXPECT_FALSE(live.Apply(never_valid, &error).ok());
  EXPECT_EQ(error.code, IngestErrorCode::kEdgeNeverValid);

  // All-or-nothing: neither rejected batch published anything — not even
  // the two valid nodes of the second batch.
  EXPECT_EQ(live.generation(), 0u);
  EXPECT_EQ(live.Acquire()->total_nodes(), 3);
  EXPECT_EQ(live.ingest_stats().batches, 0);
}

TEST(LiveGraphTest, SecondApplyChainsTheOverlay) {
  LiveGraph live(MakeBase(), ManualOnly());
  IngestErrorDetail error;
  IngestBatch first;
  first.nodes.push_back(MakeNode("dave", IntervalSet{{0, 9}}));
  ASSERT_TRUE(live.Apply(first, &error).ok());
  const GraphSnapshotHandle mid = live.Acquire();

  IngestBatch second;
  second.nodes.push_back(MakeNode("erin", IntervalSet{{0, 9}}));
  IngestEdge edge;  // dave -> erin, across batches via absolute id.
  edge.src = 3;
  edge.dst_new = 0;
  second.edges.push_back(edge);
  ASSERT_TRUE(live.Apply(second, &error).ok());

  const GraphSnapshotHandle after = live.Acquire();
  EXPECT_EQ(after->generation, 2u);
  EXPECT_EQ(after->total_nodes(), 5);
  EXPECT_EQ(after->total_edges(), 3);
  EXPECT_EQ(after->overlay->NodeAt(*after->graph, 4).label, "erin");
  EXPECT_EQ(after->overlay->EdgeAt(*after->graph, 2).src, 3);
  EXPECT_EQ(after->overlay->EdgeAt(*after->graph, 2).dst, 4);
  // The generation-1 pin still sees exactly the first batch.
  EXPECT_EQ(mid->total_nodes(), 4);
  EXPECT_EQ(mid->total_edges(), 2);
}

TEST(LiveGraphTest, CompactFoldsTheDeltaEquivalently) {
  LiveGraph live(MakeBase(), ManualOnly());
  IngestErrorDetail error;
  IngestBatch batch;
  batch.nodes.push_back(MakeNode("dave fresh", IntervalSet{{2, 7}}, 4.0));
  IngestEdge edge;
  edge.src = 2;
  edge.dst_new = 0;
  edge.weight = 2.0;
  batch.edges.push_back(edge);
  ASSERT_TRUE(live.Apply(batch, &error).ok());
  const GraphSnapshotHandle before = live.Acquire();

  const auto generation = live.Compact(/*manual=*/true);
  ASSERT_TRUE(generation.ok());
  EXPECT_EQ(*generation, 2u);

  const GraphSnapshotHandle after = live.Acquire();
  EXPECT_EQ(after->generation, 2u);
  // The delta is folded in: no overlay, the rebuilt base owns everything.
  EXPECT_EQ(after->overlay, nullptr);
  EXPECT_EQ(live.delta_bytes(), 0u);
  ASSERT_EQ(after->graph->num_nodes(), before->total_nodes());
  ASSERT_EQ(after->graph->num_edges(), before->total_edges());
  // Element-for-element identity with the overlay view it replaced.
  for (NodeId n = 0; n < after->graph->num_nodes(); ++n) {
    const graph::Node& folded = after->graph->node(n);
    const graph::Node& overlaid = before->overlay->NodeAt(*before->graph, n);
    EXPECT_EQ(folded.label, overlaid.label) << "node " << n;
    EXPECT_EQ(folded.weight, overlaid.weight) << "node " << n;
    EXPECT_TRUE(folded.validity == overlaid.validity) << "node " << n;
  }
  for (graph::EdgeId e = 0; e < after->graph->num_edges(); ++e) {
    const graph::Edge& folded = after->graph->edge(e);
    const graph::Edge& overlaid = before->overlay->EdgeAt(*before->graph, e);
    EXPECT_EQ(folded.src, overlaid.src) << "edge " << e;
    EXPECT_EQ(folded.dst, overlaid.dst) << "edge " << e;
    EXPECT_EQ(folded.weight, overlaid.weight) << "edge " << e;
    EXPECT_TRUE(folded.validity == overlaid.validity) << "edge " << e;
  }
  // The rebuilt index answers for the folded labels.
  search::SearchEngine engine(*after->graph, after->index.get());
  search::Query query;
  query.keywords = {"fresh"};
  const auto response = engine.Search(query);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->results.size(), 1u);
  EXPECT_EQ(response->results[0].root, 3);

  const CompactionStats stats = live.compaction_stats();
  EXPECT_EQ(stats.runs, 1);
  EXPECT_EQ(stats.manual_runs, 1);
  EXPECT_EQ(stats.nodes_folded, 1);
  EXPECT_EQ(stats.edges_folded, 1);
  EXPECT_GE(stats.last_rebuild_seconds, 0.0);
  EXPECT_GE(stats.last_swap_seconds, 0.0);
}

TEST(LiveGraphTest, CompactWithoutDeltaIsANoOp) {
  LiveGraph live(MakeBase(), ManualOnly());
  const auto generation = live.Compact(/*manual=*/true);
  ASSERT_TRUE(generation.ok());
  EXPECT_EQ(*generation, 0u);
  EXPECT_EQ(live.compaction_stats().runs, 0);
}

TEST(LiveGraphTest, OnPublishFiresForApplyAndCompact) {
  LiveGraph live(MakeBase(), ManualOnly());
  std::vector<uint64_t> published;
  live.set_on_publish(
      [&published](uint64_t generation) { published.push_back(generation); });

  IngestErrorDetail error;
  IngestBatch batch;
  batch.nodes.push_back(MakeNode("dave", IntervalSet{{0, 9}}));
  ASSERT_TRUE(live.Apply(batch, &error).ok());
  ASSERT_TRUE(live.Compact(/*manual=*/true).ok());
  EXPECT_EQ(published, (std::vector<uint64_t>{1, 2}));
}

TEST(LiveGraphTest, SnapshotCachesFollowTheCacheOptions) {
  // Caching off (the default): no snapshot ever carries a cache bundle, so
  // the caches-off search path stays byte-identical to static serving.
  LiveGraph plain(MakeBase(), ManualOnly());
  EXPECT_EQ(plain.Acquire()->caches, nullptr);
  IngestErrorDetail error;
  IngestBatch batch;
  batch.nodes.push_back(MakeNode("dave", IntervalSet{{0, 9}}));
  ASSERT_TRUE(plain.Apply(batch, &error).ok());
  EXPECT_EQ(plain.Acquire()->caches, nullptr);

  // Caching on: every publish gets its own FRESH bundle (generation-bumped
  // invalidation — no entry can predate the snapshot's data).
  LiveGraph cached(MakeBase(), ManualOnly(), cache::QueryCachesOptions{});
  const auto first = cached.Acquire()->caches;
  ASSERT_NE(first, nullptr);
  ASSERT_TRUE(cached.Apply(batch, &error).ok());
  const auto second = cached.Acquire()->caches;
  ASSERT_NE(second, nullptr);
  EXPECT_NE(first.get(), second.get());
  ASSERT_TRUE(cached.Compact(/*manual=*/true).ok());
  const auto third = cached.Acquire()->caches;
  ASSERT_NE(third, nullptr);
  EXPECT_NE(second.get(), third.get());
}

TEST(LiveGraphTest, SearchThroughTheOverlaySeesIngestedData) {
  LiveGraph live(MakeBase(), ManualOnly());
  IngestErrorDetail error;
  IngestBatch batch;
  batch.nodes.push_back(MakeNode("dave fresh", IntervalSet{{0, 9}}, 1.0));
  IngestEdge edge;
  edge.src = 0;
  edge.dst_new = 0;
  batch.edges.push_back(edge);
  ASSERT_TRUE(live.Apply(batch, &error).ok());

  const GraphSnapshotHandle snap = live.Acquire();
  search::SearchEngine engine(*snap->graph, snap->index.get());
  search::Query query;
  query.keywords = {"fresh"};
  search::SearchOptions options;
  options.overlay = snap->overlay_or_null();
  const auto response = engine.Search(query, options);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->results.size(), 1u);
  EXPECT_EQ(response->results[0].root, 3);

  // Without the overlay the same engine cannot see the delta.
  const auto blind = engine.Search(query);
  ASSERT_TRUE(blind.ok());
  EXPECT_TRUE(blind->results.empty());
}

TEST(LiveGraphTest, BackgroundCompactionFollowsTheSizePolicy) {
  CompactionPolicy policy;
  policy.background = true;
  policy.max_delta_bytes = 1;  // Any delta triggers the next poll.
  policy.max_delta_age_ms = 0;
  policy.poll_interval_ms = 5;
  LiveGraph live(MakeBase(), policy);

  IngestErrorDetail error;
  IngestBatch batch;
  batch.nodes.push_back(MakeNode("dave", IntervalSet{{0, 9}}));
  ASSERT_TRUE(live.Apply(batch, &error).ok());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    const GraphSnapshotHandle snap = live.Acquire();
    if (snap->overlay == nullptr) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const GraphSnapshotHandle snap = live.Acquire();
  ASSERT_EQ(snap->overlay, nullptr) << "background compaction never fired";
  EXPECT_EQ(snap->graph->num_nodes(), 4);
  EXPECT_EQ(live.compaction_stats().runs, 1);
  EXPECT_EQ(live.compaction_stats().manual_runs, 0);
}

}  // namespace
}  // namespace tgks::ingest
