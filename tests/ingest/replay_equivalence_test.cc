// Replay-equivalence differential suite for streaming ingest
// (docs/ingest.md): the SAME graph data handed to GraphBuilder in one shot
// versus a build of a prefix plus the remainder ingested in chunks through
// LiveGraph must be indistinguishable to a query — byte-identical result
// sets, identical stop reasons, and bit-identical work counters (the six
// gated quantities: pops, useless_pops, ntds_created, edges_scanned,
// subsumption_skips, subsumption_evictions).
//
// The suite sweeps 60 seeded random graphs (10 seeds x 6 rounds, the
// snapshot_reducibility_test recipe) and for each compares
//
//   1. the element level: every node and edge read through the overlay
//      equals the build-once element with the same id;
//   2. the query level, pre-compaction: searches through the delta overlay
//      against the build-once graph, across bound kinds and k (bounded and
//      exhaustive);
//   3. the query level, post-compaction: the folded graph against the
//      build-once graph — and since a compacted snapshot carries fully
//      rebuilt reachability labels, the opt-in prune must be re-armed and
//      still exhaustively result-identical.
//
// Integer weights keep every distance an exact double, so all comparisons
// are == (no epsilon).

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_builder.h"
#include "graph/inverted_index.h"
#include "ingest/live_graph.h"
#include "search/search_engine.h"
#include "temporal/interval_set.h"

namespace tgks::ingest {
namespace {

using graph::EdgeId;
using graph::GraphBuilder;
using graph::NodeId;
using graph::TemporalGraph;
using search::SearchEngine;
using search::SearchOptions;
using search::SearchResponse;
using search::UpperBoundKind;
using temporal::IntervalSet;
using temporal::TimePoint;

struct NodeSpec {
  std::string label;
  double weight = 0.0;
  IntervalSet validity;
};

struct EdgeSpec {
  NodeId src = 0;
  NodeId dst = 0;
  double weight = 1.0;
  IntervalSet validity;
};

/// One generated dataset in arrival order: nodes 0..N-1, then every edge in
/// the exact order both construction paths will assign edge ids.
struct Dataset {
  TimePoint horizon = 0;
  std::vector<NodeSpec> nodes;
  std::vector<EdgeSpec> edges;  ///< Ordered: base edges, then chunk by chunk.
  NodeId base_nodes = 0;        ///< Prefix built with GraphBuilder.
  EdgeId base_edges = 0;        ///< Prefix of `edges` built with GraphBuilder.
};

IntervalSet RandomWindow(Rng* rng, TimePoint horizon) {
  const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
  const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
  return IntervalSet{{std::min(a, c), std::max(a, c)}};
}

/// Random integer-weight dataset whose edges are all valid within their
/// endpoints' lifetimes (so GraphBuilder's kClamp and LiveGraph::Apply both
/// accept every element, and the two paths see identical data).
Dataset RandomDataset(Rng* rng, int num_nodes, int num_edges,
                      TimePoint horizon) {
  Dataset data;
  data.horizon = horizon;
  for (int i = 0; i < num_nodes; ++i) {
    NodeSpec node;
    // Two shared keyword words (k0..k4 buckets) plus a unique word, so
    // multi-keyword queries meet at trees spanning base and delta nodes.
    node.label = "k" + std::to_string(i % 5) + " k" +
                 std::to_string((i / 2) % 5) + " n" + std::to_string(i);
    node.weight = static_cast<double>(rng->Uniform(4));
    node.validity = RandomWindow(rng, horizon);
    data.nodes.push_back(std::move(node));
  }
  data.base_nodes = static_cast<NodeId>((num_nodes * 3) / 5);

  std::vector<EdgeSpec> generated;
  for (int i = 0; i < num_edges * 3 && static_cast<int>(generated.size()) <
                                           num_edges; ++i) {
    const NodeId u = static_cast<NodeId>(rng->Uniform(num_nodes));
    const NodeId v = static_cast<NodeId>(rng->Uniform(num_nodes));
    if (u == v) continue;
    EdgeSpec edge;
    edge.src = u;
    edge.dst = v;
    edge.weight = static_cast<double>(1 + rng->Uniform(4));
    edge.validity = RandomWindow(rng, horizon);
    const IntervalSet clamped = edge.validity
                                    .Intersect(data.nodes[u].validity)
                                    .Intersect(data.nodes[v].validity);
    if (clamped.IsEmpty()) continue;  // kClamp would reject; skip.
    generated.push_back(std::move(edge));
  }

  // Arrival order: an edge becomes ingestable once its latest endpoint
  // exists, so order edges by that endpoint's phase (base first, then delta
  // arrival order), stable within a phase. Both construction paths use
  // exactly this order, which is what makes edge ids line up.
  std::stable_sort(generated.begin(), generated.end(),
                   [&](const EdgeSpec& a, const EdgeSpec& b) {
                     const NodeId ga = std::max(a.src, a.dst);
                     const NodeId gb = std::max(b.src, b.dst);
                     const NodeId pa = ga < data.base_nodes ? 0 : ga;
                     const NodeId pb = gb < data.base_nodes ? 0 : gb;
                     return pa < pb;
                   });
  data.edges = std::move(generated);
  data.base_edges = 0;
  while (data.base_edges < static_cast<EdgeId>(data.edges.size()) &&
         std::max(data.edges[static_cast<size_t>(data.base_edges)].src,
                  data.edges[static_cast<size_t>(data.base_edges)].dst) <
             data.base_nodes) {
    ++data.base_edges;
  }
  return data;
}

/// The oracle: every element through one GraphBuilder.
TemporalGraph BuildOnce(const Dataset& data) {
  GraphBuilder b(data.horizon, graph::ValidityPolicy::kClamp);
  for (const NodeSpec& node : data.nodes) {
    b.AddNode(node.label, node.validity, node.weight);
  }
  for (const EdgeSpec& edge : data.edges) {
    b.AddEdge(edge.src, edge.dst, edge.validity, edge.weight);
  }
  auto built = b.Build();
  EXPECT_TRUE(built.ok()) << built.status();
  return std::move(built).value();
}

/// The subject: the base prefix through GraphBuilder, the rest through
/// LiveGraph::Apply in `chunks` batches of nodes plus the edges those nodes
/// unlock. Endpoints landing in the current batch use the batch-relative
/// reference form; everything else is absolute.
std::unique_ptr<LiveGraph> BuildByIngest(const Dataset& data, int chunks) {
  GraphBuilder b(data.horizon, graph::ValidityPolicy::kClamp);
  for (NodeId n = 0; n < data.base_nodes; ++n) {
    const NodeSpec& node = data.nodes[static_cast<size_t>(n)];
    b.AddNode(node.label, node.validity, node.weight);
  }
  for (EdgeId e = 0; e < data.base_edges; ++e) {
    const EdgeSpec& edge = data.edges[static_cast<size_t>(e)];
    b.AddEdge(edge.src, edge.dst, edge.validity, edge.weight);
  }
  auto built = b.Build();
  EXPECT_TRUE(built.ok()) << built.status();
  CompactionPolicy policy;
  policy.background = false;
  auto live =
      std::make_unique<LiveGraph>(std::move(built).value(), policy);

  const NodeId delta_nodes =
      static_cast<NodeId>(data.nodes.size()) - data.base_nodes;
  const NodeId per_chunk = std::max<NodeId>(1, (delta_nodes + chunks - 1) /
                                                   static_cast<NodeId>(chunks));
  EdgeId next_edge = data.base_edges;
  NodeId chunk_begin = data.base_nodes;
  while (chunk_begin < static_cast<NodeId>(data.nodes.size())) {
    const NodeId chunk_end = std::min<NodeId>(
        chunk_begin + per_chunk, static_cast<NodeId>(data.nodes.size()));
    IngestBatch batch;
    for (NodeId n = chunk_begin; n < chunk_end; ++n) {
      IngestNode node;
      node.label = data.nodes[static_cast<size_t>(n)].label;
      node.weight = data.nodes[static_cast<size_t>(n)].weight;
      node.validity = data.nodes[static_cast<size_t>(n)].validity;
      batch.nodes.push_back(std::move(node));
    }
    while (next_edge < static_cast<EdgeId>(data.edges.size()) &&
           std::max(data.edges[static_cast<size_t>(next_edge)].src,
                    data.edges[static_cast<size_t>(next_edge)].dst) <
               chunk_end) {
      const EdgeSpec& spec = data.edges[static_cast<size_t>(next_edge)];
      IngestEdge edge;
      if (spec.src >= chunk_begin) {
        edge.src_new = spec.src - chunk_begin;
      } else {
        edge.src = spec.src;
      }
      if (spec.dst >= chunk_begin) {
        edge.dst_new = spec.dst - chunk_begin;
      } else {
        edge.dst = spec.dst;
      }
      edge.weight = spec.weight;
      edge.validity = spec.validity;  // Apply clamps to the endpoints.
      batch.edges.push_back(std::move(edge));
      ++next_edge;
    }
    IngestErrorDetail error;
    const auto applied = live->Apply(batch, &error);
    EXPECT_TRUE(applied.ok())
        << error.message << " (chunk at node " << chunk_begin << ")";
    chunk_begin = chunk_end;
  }
  EXPECT_EQ(next_edge, static_cast<EdgeId>(data.edges.size()));
  return live;
}

void ExpectSameElements(const TemporalGraph& oracle,
                        const GraphSnapshotHandle& snap,
                        const std::string& context) {
  ASSERT_EQ(snap->total_nodes(), oracle.num_nodes()) << context;
  ASSERT_EQ(snap->total_edges(), oracle.num_edges()) << context;
  const graph::DeltaOverlay* overlay = snap->overlay.get();
  for (NodeId n = 0; n < oracle.num_nodes(); ++n) {
    const graph::Node& got = overlay != nullptr
                                 ? overlay->NodeAt(*snap->graph, n)
                                 : snap->graph->node(n);
    EXPECT_EQ(got.label, oracle.node(n).label) << context << " node " << n;
    EXPECT_EQ(got.weight, oracle.node(n).weight) << context << " node " << n;
    EXPECT_TRUE(got.validity == oracle.node(n).validity)
        << context << " node " << n;
  }
  for (EdgeId e = 0; e < oracle.num_edges(); ++e) {
    const graph::Edge& got = overlay != nullptr
                                 ? overlay->EdgeAt(*snap->graph, e)
                                 : snap->graph->edge(e);
    EXPECT_EQ(got.src, oracle.edge(e).src) << context << " edge " << e;
    EXPECT_EQ(got.dst, oracle.edge(e).dst) << context << " edge " << e;
    EXPECT_EQ(got.weight, oracle.edge(e).weight) << context << " edge " << e;
    EXPECT_TRUE(got.validity == oracle.edge(e).validity)
        << context << " edge " << e;
  }
}

void ExpectSameResponse(const SearchResponse& oracle,
                        const SearchResponse& got,
                        const std::string& context) {
  EXPECT_EQ(got.stop_reason, oracle.stop_reason) << context;
  EXPECT_EQ(got.exhausted, oracle.exhausted) << context;
  ASSERT_EQ(got.results.size(), oracle.results.size()) << context;
  for (size_t i = 0; i < oracle.results.size(); ++i) {
    const search::ResultTree& a = oracle.results[i];
    const search::ResultTree& b = got.results[i];
    EXPECT_EQ(b.Signature(), a.Signature()) << context << " result " << i;
    EXPECT_EQ(b.root, a.root) << context << " result " << i;
    EXPECT_EQ(b.nodes, a.nodes) << context << " result " << i;
    EXPECT_EQ(b.edges, a.edges) << context << " result " << i;
    EXPECT_TRUE(b.time == a.time) << context << " result " << i;
    EXPECT_EQ(b.total_weight, a.total_weight) << context << " result " << i;
    EXPECT_EQ(b.keyword_nodes, a.keyword_nodes)
        << context << " result " << i;
  }
  // The six gated work counters must be bit-identical: the overlay walk has
  // to reproduce EXACTLY the enumeration a build-once CSR would produce.
  EXPECT_EQ(got.counters.pops, oracle.counters.pops) << context;
  EXPECT_EQ(got.counters.useless_pops, oracle.counters.useless_pops)
      << context;
  EXPECT_EQ(got.counters.ntds_created, oracle.counters.ntds_created)
      << context;
  EXPECT_EQ(got.counters.edges_scanned, oracle.counters.edges_scanned)
      << context;
  EXPECT_EQ(got.counters.subsumption_skips, oracle.counters.subsumption_skips)
      << context;
  EXPECT_EQ(got.counters.subsumption_evictions,
            oracle.counters.subsumption_evictions)
      << context;
  EXPECT_EQ(got.counters.candidates, oracle.counters.candidates) << context;
  EXPECT_EQ(got.counters.results, oracle.counters.results) << context;
}

struct QueryConfig {
  int32_t k;
  UpperBoundKind bound;
};

constexpr QueryConfig kConfigs[] = {
    {3, UpperBoundKind::kEmpirical},
    {3, UpperBoundKind::kAccurate},
    {0, UpperBoundKind::kEmpirical},  // k <= 0: exhaustive.
};

const std::vector<std::vector<std::string>> kKeywordSets = {
    {"k0"},
    {"k1", "k2"},
    {"k3", "k4", "k0"},
};

void CheckReplayEquivalence(const Dataset& data, const std::string& context) {
  const TemporalGraph oracle_graph = BuildOnce(data);
  const graph::InvertedIndex oracle_index(oracle_graph);
  const SearchEngine oracle(oracle_graph, &oracle_index);

  auto live = BuildByIngest(data, /*chunks=*/3);
  const GraphSnapshotHandle snap = live->Acquire();
  ASSERT_NE(snap->overlay_or_null(), nullptr)
      << context << ": the chunked build produced no delta";
  ExpectSameElements(oracle_graph, snap, context + " pre-compaction");

  const SearchEngine subject(*snap->graph, snap->index.get());
  for (const auto& keywords : kKeywordSets) {
    search::Query query;
    query.keywords = keywords;
    for (const QueryConfig& config : kConfigs) {
      SearchOptions base_options;
      base_options.k = config.k;
      base_options.bound = config.bound;
      SearchOptions live_options = base_options;
      live_options.overlay = snap->overlay_or_null();
      const auto want = oracle.Search(query, base_options);
      const auto got = subject.Search(query, live_options);
      ASSERT_TRUE(want.ok()) << context;
      ASSERT_TRUE(got.ok()) << context;
      ExpectSameResponse(*want, *got,
                         context + " overlay k=" + std::to_string(config.k) +
                             " bound=" +
                             std::string(UpperBoundKindName(config.bound)) +
                             " q=" + query.ToString());

      // Conservative pruning: requesting the opt-in prunes with a live
      // overlay must be a forced no-op — the base reachability labels do
      // not speak for delta connectivity, so the engine runs unpruned and
      // stays bit-identical (docs/ingest.md, "Conservative pruning").
      SearchOptions pruned_live = live_options;
      pruned_live.reachability_prune = true;
      pruned_live.guided_search = true;
      const auto forced_off = subject.Search(query, pruned_live);
      ASSERT_TRUE(forced_off.ok()) << context;
      ExpectSameResponse(*want, *forced_off,
                         context + " forced-off prunes k=" +
                             std::to_string(config.k) +
                             " q=" + query.ToString());
      EXPECT_EQ(forced_off->counters.reachability_prunes, 0) << context;
      EXPECT_EQ(forced_off->counters.guided_prunes, 0) << context;
    }
  }

  // Fold the delta: the compacted snapshot must STILL be indistinguishable,
  // now with no overlay in the loop at all.
  ASSERT_TRUE(live->Compact(/*manual=*/true).ok()) << context;
  const GraphSnapshotHandle compacted = live->Acquire();
  ASSERT_EQ(compacted->overlay, nullptr) << context;
  ExpectSameElements(oracle_graph, compacted, context + " post-compaction");

  const SearchEngine folded(*compacted->graph, compacted->index.get());
  for (const auto& keywords : kKeywordSets) {
    search::Query query;
    query.keywords = keywords;
    SearchOptions options;
    options.k = 0;  // Exhaustive.
    const auto want = oracle.Search(query, options);
    const auto got = folded.Search(query, options);
    ASSERT_TRUE(want.ok()) << context;
    ASSERT_TRUE(got.ok()) << context;
    ExpectSameResponse(*want, *got,
                       context + " compacted q=" + query.ToString());

    // Compaction rebuilt the reachability labels, so the conservative
    // prune the overlay forced off is re-armed. Under the accurate bound
    // the pruned top-k is exact, so its score sequence must match the
    // unpruned oracle's; tree identity is compared on scores rather than
    // signatures because tied-score trees may surface either
    // representative (docs/reachability.md).
    SearchOptions pruned;
    pruned.k = 3;
    pruned.bound = search::UpperBoundKind::kAccurate;
    pruned.reachability_prune = true;
    SearchOptions unpruned = pruned;
    unpruned.reachability_prune = false;
    const auto pruned_got = folded.Search(query, pruned);
    const auto pruned_want = oracle.Search(query, unpruned);
    ASSERT_TRUE(pruned_got.ok()) << context;
    ASSERT_TRUE(pruned_want.ok()) << context;
    ASSERT_EQ(pruned_got->results.size(), pruned_want->results.size())
        << context << " pruned q=" << query.ToString();
    for (size_t i = 0; i < pruned_want->results.size(); ++i) {
      EXPECT_EQ(pruned_got->results[i].total_weight,
                pruned_want->results[i].total_weight)
          << context << " pruned q=" << query.ToString() << " result " << i;
    }
  }
}

class ReplayEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplayEquivalenceTest, ChunkedIngestMatchesBuildOnce) {
  Rng rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    const TimePoint horizon = 4 + static_cast<TimePoint>(rng.Uniform(5));
    const int num_nodes = 8 + static_cast<int>(rng.Uniform(8));
    const int num_edges = 2 * num_nodes + static_cast<int>(rng.Uniform(10));
    const Dataset data = RandomDataset(&rng, num_nodes, num_edges, horizon);
    const std::string context = "seed " + std::to_string(GetParam()) +
                                " round " + std::to_string(round);
    CheckReplayEquivalence(data, context);
  }
}

// 10 seeds x 6 rounds = 60 random graphs.
INSTANTIATE_TEST_SUITE_P(Seeds, ReplayEquivalenceTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99,
                                           110));

// Deterministic anchor: a hand-built two-phase graph where the delta edge
// crosses from a base node into the delta, exercising every reference form.
TEST(ReplayEquivalenceAnchorTest, HandBuiltTwoPhaseGraph) {
  Dataset data;
  data.horizon = 6;
  const IntervalSet always{{0, 5}};
  for (int i = 0; i < 5; ++i) {
    NodeSpec node;
    node.label = "k" + std::to_string(i % 2) + " n" + std::to_string(i);
    node.weight = static_cast<double>(i % 3);
    node.validity = always;
    data.nodes.push_back(std::move(node));
  }
  data.base_nodes = 3;
  data.edges = {
      {0, 1, 1.0, always},  // base
      {1, 2, 2.0, always},  // base
      {2, 3, 1.0, always},  // delta: base -> delta
      {3, 4, 1.0, always},  // delta: delta -> delta
      {4, 0, 2.0, always},  // delta: delta -> base
  };
  data.base_edges = 2;
  CheckReplayEquivalence(data, "hand-built anchor");
}

}  // namespace
}  // namespace tgks::ingest
