// Unit tests for the MetricsRegistry: instrument semantics, register-or-
// return identity, percentile math, and the Prometheus text exposition.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace tgks::obs {
namespace {

TEST(CounterTest, IncrementsAccumulate) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test_total");
  EXPECT_EQ(c->value(), 0);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42);
}

TEST(GaugeTest, SetAddAndHighWater) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test_gauge");
  g->Set(10);
  EXPECT_EQ(g->value(), 10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
  g->Max(5);  // Lower: no effect.
  EXPECT_EQ(g->value(), 7);
  g->Max(20);  // Higher: raises.
  EXPECT_EQ(g->value(), 20);
}

TEST(RegistryTest, GetReturnsSameInstrumentForSameName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("dup_total", "first help wins");
  Counter* b = registry.GetCounter("dup_total", "ignored");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(b->value(), 3);
  // Different names are distinct instruments.
  EXPECT_NE(a, registry.GetCounter("other_total"));
}

TEST(HistogramTest, ObserveFillsBucketsAndSum) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat_micros", "", {10, 100, 1000});
  h->Observe(5);
  h->Observe(10);   // Boundary lands in the le=10 bucket.
  h->Observe(70);
  h->Observe(5000);  // Overflow bucket.
  EXPECT_EQ(h->count(), 4);
  EXPECT_EQ(h->sum(), 5085);
}

TEST(HistogramTest, NearestRankPercentiles) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("p_micros", "", {1, 2, 5, 10, 100});
  // 10 samples: 1..10. Bucket occupancy: le=1 -> 1, le=2 -> 1, le=5 -> 3,
  // le=10 -> 5.
  for (int64_t v = 1; v <= 10; ++v) h->Observe(v);
  EXPECT_EQ(h->Percentile(0), 1);
  EXPECT_EQ(h->Percentile(10), 1);
  EXPECT_EQ(h->Percentile(50), 5);    // 5th sample lives in the le=5 bucket.
  EXPECT_EQ(h->Percentile(90), 10);
  EXPECT_EQ(h->Percentile(100), 10);
  // Overflow samples report the largest finite bound.
  h->Observe(10'000);
  EXPECT_EQ(h->Percentile(100), 100);
}

TEST(HistogramTest, EmptyHistogramReportsZero) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("empty_micros");
  EXPECT_EQ(h->count(), 0);
  EXPECT_EQ(h->Percentile(50), 0);
}

TEST(HistogramTest, DefaultBoundsAre125Decades) {
  const std::vector<int64_t> bounds = DefaultHistogramBounds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.front(), 1);
  EXPECT_EQ(bounds.back(), 5'000'000'000);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "bounds must be ascending";
  }
  // 1,2,5 pattern: every decade contributes exactly three bounds.
  EXPECT_EQ(bounds.size() % 3, 0u);
  EXPECT_EQ(bounds.size(), 30u);  // Decades 1 through 1e9.
}

TEST(RenderTextTest, PrometheusExpositionShape) {
  MetricsRegistry registry;
  registry.GetCounter("tgks_queries_total", "Completed searches.")
      ->Increment(7);
  registry.GetGauge("tgks_pool_threads", "Worker threads.")->Set(4);
  Histogram* h =
      registry.GetHistogram("tgks_query_micros", "Query time.", {10, 100});
  h->Observe(5);
  h->Observe(50);
  h->Observe(500);

  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("# HELP tgks_queries_total Completed searches.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tgks_queries_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("tgks_queries_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tgks_pool_threads gauge\n"), std::string::npos);
  EXPECT_NE(text.find("tgks_pool_threads 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tgks_query_micros histogram\n"),
            std::string::npos);
  // Cumulative buckets: le="100" counts the le="10" samples too.
  EXPECT_NE(text.find("tgks_query_micros_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("tgks_query_micros_bucket{le=\"100\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("tgks_query_micros_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("tgks_query_micros_sum 555\n"), std::string::npos);
  EXPECT_NE(text.find("tgks_query_micros_count 3\n"), std::string::npos);
}

TEST(RegistryTest, ResetZeroesEverything) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c_total");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h_micros", "", {10});
  c->Increment(5);
  g->Set(9);
  h->Observe(3);
  registry.Reset();
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0);
  EXPECT_EQ(h->sum(), 0);
  EXPECT_EQ(h->Percentile(99), 0);
}

TEST(RegistryTest, ConcurrentUpdatesAndRegistrationAreSafe) {
  // Hot-path updates race with registration of new names; TSan covers the
  // memory model, the final counts cover atomicity.
  MetricsRegistry registry;
  Counter* shared = registry.GetCounter("shared_total");
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, shared, t] {
      for (int i = 0; i < kIters; ++i) {
        shared->Increment();
        registry.GetCounter("per_thread_" + std::to_string(t))->Increment();
        registry.GetHistogram("h_shared")->Observe(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(shared->value(), kThreads * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.GetCounter("per_thread_" + std::to_string(t))->value(),
              kIters);
  }
  EXPECT_EQ(registry.GetHistogram("h_shared")->count(), kThreads * kIters);
}

TEST(GlobalMetricsTest, IsASingleton) {
  EXPECT_EQ(&GlobalMetrics(), &GlobalMetrics());
}

}  // namespace
}  // namespace tgks::obs
