// Unit tests for the MetricsRegistry: instrument semantics, register-or-
// return identity, percentile math, and the Prometheus text exposition.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace tgks::obs {
namespace {

TEST(CounterTest, IncrementsAccumulate) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test_total");
  EXPECT_EQ(c->value(), 0);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42);
}

TEST(GaugeTest, SetAddAndHighWater) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test_gauge");
  g->Set(10);
  EXPECT_EQ(g->value(), 10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
  g->Max(5);  // Lower: no effect.
  EXPECT_EQ(g->value(), 7);
  g->Max(20);  // Higher: raises.
  EXPECT_EQ(g->value(), 20);
}

TEST(RegistryTest, GetReturnsSameInstrumentForSameName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("dup_total", "first help wins");
  Counter* b = registry.GetCounter("dup_total", "ignored");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(b->value(), 3);
  // Different names are distinct instruments.
  EXPECT_NE(a, registry.GetCounter("other_total"));
}

TEST(HistogramTest, ObserveFillsBucketsAndSum) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat_micros", "", {10, 100, 1000});
  h->Observe(5);
  h->Observe(10);   // Boundary lands in the le=10 bucket.
  h->Observe(70);
  h->Observe(5000);  // Overflow bucket.
  EXPECT_EQ(h->count(), 4);
  EXPECT_EQ(h->sum(), 5085);
}

TEST(HistogramTest, NearestRankPercentiles) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("p_micros", "", {1, 2, 5, 10, 100});
  // 10 samples: 1..10. Bucket occupancy: le=1 -> 1, le=2 -> 1, le=5 -> 3,
  // le=10 -> 5.
  for (int64_t v = 1; v <= 10; ++v) h->Observe(v);
  EXPECT_EQ(h->Percentile(0), 1);
  EXPECT_EQ(h->Percentile(10), 1);
  EXPECT_EQ(h->Percentile(50), 5);    // 5th sample lives in the le=5 bucket.
  EXPECT_EQ(h->Percentile(90), 10);
  EXPECT_EQ(h->Percentile(100), 10);
  // Overflow samples report the largest observed sample, not the last bound.
  h->Observe(10'000);
  EXPECT_EQ(h->Percentile(100), 10'000);
}

// Regression: tail percentiles that land in the overflow bucket used to be
// capped at bounds_.back(), silently under-reporting every latency above
// the top bound (pre-fix this test fails with Percentile(99) == 100).
TEST(HistogramTest, OverflowPercentileReportsMaxObservedSample) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("overflow_micros", "", {10, 100});
  h->Observe(5'000);
  h->Observe(7'000);
  EXPECT_EQ(h->Percentile(50), 7'000);
  EXPECT_EQ(h->Percentile(99), 7'000);
  EXPECT_EQ(h->Percentile(100), 7'000);
  // A never-under-reports floor: the reported quantile is >= the last bound
  // whenever any overflow sample exists.
  h->Observe(50);  // In-range sample: p0 now resolves inside the buckets.
  EXPECT_EQ(h->Percentile(0), 100);
  EXPECT_EQ(h->Percentile(100), 7'000);
}

TEST(HistogramTest, ResetClearsOverflowMax) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("overflow_reset_micros", "", {10});
  h->Observe(9'999);
  ASSERT_EQ(h->Percentile(100), 9'999);
  registry.Reset();
  EXPECT_EQ(h->Percentile(100), 0);
  // Post-reset observations start a fresh max.
  h->Observe(42);
  EXPECT_EQ(h->Percentile(100), 42);
}

TEST(HistogramTest, DefaultBoundsOverflowReportsMaxObserved) {
  // The default 1-2-5 ladder tops out at 5e9; a sample beyond it must still
  // surface through Percentile (the registry substitutes the default ladder
  // when no bounds are given, so this also covers the no-bounds path that
  // pre-fix read bounds_.back() — UB on a truly empty vector).
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("default_bounds_micros");
  h->Observe(6'000'000'000);
  EXPECT_EQ(h->Percentile(99), 6'000'000'000);
}

TEST(HistogramTest, EmptyHistogramReportsZero) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("empty_micros");
  EXPECT_EQ(h->count(), 0);
  EXPECT_EQ(h->Percentile(50), 0);
}

TEST(HistogramTest, DefaultBoundsAre125Decades) {
  const std::vector<int64_t> bounds = DefaultHistogramBounds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.front(), 1);
  EXPECT_EQ(bounds.back(), 5'000'000'000);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "bounds must be ascending";
  }
  // 1,2,5 pattern: every decade contributes exactly three bounds.
  EXPECT_EQ(bounds.size() % 3, 0u);
  EXPECT_EQ(bounds.size(), 30u);  // Decades 1 through 1e9.
}

TEST(RenderTextTest, PrometheusExpositionShape) {
  MetricsRegistry registry;
  registry.GetCounter("tgks_queries_total", "Completed searches.")
      ->Increment(7);
  registry.GetGauge("tgks_pool_threads", "Worker threads.")->Set(4);
  Histogram* h =
      registry.GetHistogram("tgks_query_micros", "Query time.", {10, 100});
  h->Observe(5);
  h->Observe(50);
  h->Observe(500);

  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("# HELP tgks_queries_total Completed searches.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tgks_queries_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("tgks_queries_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tgks_pool_threads gauge\n"), std::string::npos);
  EXPECT_NE(text.find("tgks_pool_threads 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tgks_query_micros histogram\n"),
            std::string::npos);
  // Cumulative buckets: le="100" counts the le="10" samples too.
  EXPECT_NE(text.find("tgks_query_micros_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("tgks_query_micros_bucket{le=\"100\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("tgks_query_micros_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("tgks_query_micros_sum 555\n"), std::string::npos);
  EXPECT_NE(text.find("tgks_query_micros_count 3\n"), std::string::npos);
}

TEST(RegistryTest, ResetZeroesEverything) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c_total");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h_micros", "", {10});
  c->Increment(5);
  g->Set(9);
  h->Observe(3);
  registry.Reset();
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0);
  EXPECT_EQ(h->sum(), 0);
  EXPECT_EQ(h->Percentile(99), 0);
}

TEST(RegistryTest, ConcurrentUpdatesAndRegistrationAreSafe) {
  // Hot-path updates race with registration of new names; TSan covers the
  // memory model, the final counts cover atomicity.
  MetricsRegistry registry;
  Counter* shared = registry.GetCounter("shared_total");
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, shared, t] {
      for (int i = 0; i < kIters; ++i) {
        shared->Increment();
        registry.GetCounter("per_thread_" + std::to_string(t))->Increment();
        registry.GetHistogram("h_shared")->Observe(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(shared->value(), kThreads * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.GetCounter("per_thread_" + std::to_string(t))->value(),
              kIters);
  }
  EXPECT_EQ(registry.GetHistogram("h_shared")->count(), kThreads * kIters);
}

TEST(GlobalMetricsTest, IsASingleton) {
  EXPECT_EQ(&GlobalMetrics(), &GlobalMetrics());
}

// --- Labeled series ---------------------------------------------------------

TEST(LabelTest, SeriesWithDistinctLabelsAreDistinctInstruments) {
  MetricsRegistry registry;
  Counter* ok = registry.GetCounter("http_requests_total", "Requests.",
                                    {{"route", "/healthz"}, {"status", "200"}});
  Counter* shed = registry.GetCounter(
      "http_requests_total", "", {{"route", "/v1/search"}, {"status", "429"}});
  EXPECT_NE(ok, shed);
  // Same (name, labels) returns the same instrument.
  EXPECT_EQ(ok, registry.GetCounter("http_requests_total", "",
                                    {{"route", "/healthz"},
                                     {"status", "200"}}));
  ok->Increment(2);
  shed->Increment(1);
  const std::string text = registry.RenderText();
  EXPECT_NE(
      text.find(
          "http_requests_total{route=\"/healthz\",status=\"200\"} 2\n"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "http_requests_total{route=\"/v1/search\",status=\"429\"} 1\n"),
      std::string::npos);
  // One HELP/TYPE block for the whole family.
  size_t first = text.find("# TYPE http_requests_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE http_requests_total counter", first + 1),
            std::string::npos);
}

TEST(LabelTest, LabeledHistogramCarriesLabelsOnEverySeries) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("req_micros", "Latency.", {10, 100},
                                       {{"route", "/v1/search"}});
  h->Observe(5);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("req_micros_bucket{route=\"/v1/search\",le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("req_micros_bucket{route=\"/v1/search\",le=\"+Inf\"} 1\n"),
      std::string::npos);
  EXPECT_NE(text.find("req_micros_sum{route=\"/v1/search\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("req_micros_count{route=\"/v1/search\"} 1\n"),
            std::string::npos);
}

TEST(LabelTest, LabelValuesAndHelpAreEscaped) {
  EXPECT_EQ(EscapeLabelValue("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(EscapeHelp("line1\nline2\\x"), "line1\\nline2\\\\x");
  MetricsRegistry registry;
  registry
      .GetCounter("esc_total", "help with \\ and\nnewline",
                  {{"path", "a\"b\\c\nd"}})
      ->Increment();
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("# HELP esc_total help with \\\\ and\\nnewline\n"),
            std::string::npos);
  EXPECT_NE(text.find("esc_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(NameValidationTest, MetricAndLabelNameGrammar) {
  EXPECT_TRUE(IsValidMetricName("tgks_http_requests_total"));
  EXPECT_TRUE(IsValidMetricName("_private:series"));
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("9leading_digit"));
  EXPECT_FALSE(IsValidMetricName("has-dash"));
  EXPECT_FALSE(IsValidMetricName("has space"));
  EXPECT_TRUE(IsValidLabelName("route"));
  EXPECT_FALSE(IsValidLabelName("__reserved"));
  EXPECT_FALSE(IsValidLabelName("le-gacy"));
  EXPECT_FALSE(IsValidLabelName(""));
}

#ifdef NDEBUG
// Registration refusal paths; in debug builds these assert instead.
TEST(NameValidationTest, InvalidRegistrationsAreRefusedSafely) {
  MetricsRegistry registry;
  Counter* good = registry.GetCounter("good_total");
  // Bad metric name, bad label name, and kind conflict on the same family.
  Counter* bad_name = registry.GetCounter("bad-name");
  Counter* bad_label = registry.GetCounter("labeled_total", "",
                                           {{"__internal", "x"}});
  Gauge* kind_conflict = registry.GetGauge("good_total");
  // Refused registrations return a usable dummy, never null, and do not
  // pollute the exposition.
  ASSERT_NE(bad_name, nullptr);
  ASSERT_NE(bad_label, nullptr);
  ASSERT_NE(kind_conflict, nullptr);
  bad_name->Increment();
  bad_label->Increment();
  kind_conflict->Set(5);
  const std::string text = registry.RenderText();
  EXPECT_EQ(text.find("bad-name"), std::string::npos);
  EXPECT_EQ(text.find("labeled_total"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE good_total gauge"), std::string::npos);
  (void)good;
}

TEST(NameValidationTest, HistogramSuffixCollisionsAreRefused) {
  MetricsRegistry registry;
  registry.GetHistogram("lat_micros");
  // A counter named like one of the histogram's emitted series would render
  // duplicate series names; refused.
  Counter* collide = registry.GetCounter("lat_micros_count");
  collide->Increment(3);
  const std::string text = registry.RenderText();
  // Exactly one lat_micros_count line (the histogram's).
  const size_t first = text.find("lat_micros_count ");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("lat_micros_count ", first + 1), std::string::npos);
  EXPECT_NE(text.find("lat_micros_count 0\n"), std::string::npos);
}
#endif  // NDEBUG

// --- Exposition format lint -------------------------------------------------

// Minimal exposition-format linter: validates the structural rules the
// Prometheus text format requires. Returns an empty string when clean, else
// the first violation.
std::string LintExposition(const std::string& text) {
  if (text.empty()) return "";  // An empty exposition is valid.
  if (text.back() != '\n') return "missing trailing newline";
  auto valid_sample_name = [](const std::string& name) {
    return IsValidMetricName(name);
  };
  std::vector<std::string> typed_families;
  std::vector<std::string> seen_series;  // name{labels} duplicates check.
  std::string current_family;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) return "unterminated line";
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) return "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      const bool is_type = line.rfind("# TYPE ", 0) == 0;
      const size_t name_start = 7;
      const size_t name_end = line.find(' ', name_start);
      if (name_end == std::string::npos) return "malformed comment: " + line;
      const std::string family = line.substr(name_start, name_end - name_start);
      if (!valid_sample_name(family)) return "bad family name: " + family;
      if (is_type) {
        for (const std::string& f : typed_families) {
          if (f == family) return "duplicate TYPE for family " + family;
        }
        typed_families.push_back(family);
        current_family = family;
        const std::string kind = line.substr(name_end + 1);
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped") {
          return "unknown TYPE kind: " + kind;
        }
      }
      continue;
    }
    if (line[0] == '#') continue;  // Free-form comment.
    // Sample line: name[{labels}] value
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) return "malformed sample: " + line;
    const std::string name = line.substr(0, name_end);
    if (!valid_sample_name(name)) return "bad sample name: " + name;
    // Samples must belong to the family whose TYPE block is open: the name
    // equals the family or family + histogram suffix.
    if (current_family.empty()) return "sample before any TYPE: " + line;
    const bool member =
        name == current_family || name == current_family + "_bucket" ||
        name == current_family + "_sum" || name == current_family + "_count";
    if (!member) return "sample " + name + " outside its TYPE block";
    std::string series = name;
    size_t value_start = name_end;
    if (line[name_end] == '{') {
      const size_t close = line.find('}', name_end);
      if (close == std::string::npos) return "unterminated labels: " + line;
      const std::string labels = line.substr(name_end + 1, close - name_end - 1);
      series += "{" + labels + "}";
      // Label grammar: k="v" pairs, comma-separated; values escaped.
      size_t lp = 0;
      while (lp < labels.size()) {
        const size_t eq = labels.find('=', lp);
        if (eq == std::string::npos) return "label missing '=': " + labels;
        if (!IsValidLabelName(labels.substr(lp, eq - lp)) &&
            labels.substr(lp, eq - lp) != "le") {
          return "bad label name in: " + labels;
        }
        if (eq + 1 >= labels.size() || labels[eq + 1] != '"') {
          return "unquoted label value: " + labels;
        }
        size_t vp = eq + 2;
        while (vp < labels.size() &&
               !(labels[vp] == '"' && labels[vp - 1] != '\\')) {
          ++vp;
        }
        if (vp >= labels.size()) return "unterminated label value: " + labels;
        lp = vp + 1;
        if (lp < labels.size()) {
          if (labels[lp] != ',') return "missing ',' between labels";
          ++lp;
        }
      }
      value_start = close + 1;
    }
    for (const std::string& s : seen_series) {
      if (s == series) return "duplicate series: " + series;
    }
    seen_series.push_back(series);
    if (value_start >= line.size() || line[value_start] != ' ') {
      return "missing value separator: " + line;
    }
    const std::string value = line.substr(value_start + 1);
    if (value.empty() || value.find(' ') != std::string::npos) {
      return "malformed value: " + line;
    }
  }
  return "";
}

TEST(FormatLintTest, RenderTextPassesTheLinter) {
  MetricsRegistry registry;
  registry.GetCounter("tgks_queries_total", "Completed searches.")
      ->Increment(7);
  registry.GetCounter("tgks_http_requests_total", "Requests.",
                      {{"route", "/v1/search"}, {"status", "200"}})
      ->Increment(3);
  registry.GetCounter("tgks_http_requests_total", "",
                      {{"route", "/v1/search"}, {"status", "429"}})
      ->Increment(1);
  registry.GetGauge("tgks_queue_depth", "Admission queue depth.")->Set(2);
  registry
      .GetHistogram("tgks_request_micros", "Request latency.", {10, 100},
                    {{"route", "/v1/search"}})
      ->Observe(55);
  registry.GetHistogram("tgks_query_micros", "Query \"latency\" in \\us.")
      ->Observe(17);
  const std::string text = registry.RenderText();
  EXPECT_EQ(LintExposition(text), "") << text;
  EXPECT_EQ(text.back(), '\n');
}

TEST(FormatLintTest, GlobalRegistryExpositionIsClean) {
  // Whatever earlier tests registered into the process-wide registry must
  // also render a lint-clean exposition.
  GlobalMetrics().GetCounter("tgks_lint_probe_total", "Probe.")->Increment();
  EXPECT_EQ(LintExposition(GlobalMetrics().RenderText()), "");
}

TEST(FormatLintTest, LinterCatchesSeededViolations) {
  EXPECT_NE(LintExposition("no_trailing_newline 1"), "");
  EXPECT_NE(LintExposition("x 1\nx 1\n"), "");  // Needs TYPE + duplicates.
  EXPECT_NE(LintExposition("# TYPE x counter\nx 1\nx 1\n"), "");
  EXPECT_NE(LintExposition("# TYPE x counter\ny 2\n"), "");
  EXPECT_NE(LintExposition("# TYPE x counter\n# TYPE x counter\nx 1\n"), "");
  EXPECT_NE(LintExposition("# TYPE x counter\nx{l=\"v} 1\n"), "");
  EXPECT_EQ(LintExposition("# TYPE x counter\nx{l=\"v\"} 1\n"), "");
}

}  // namespace
}  // namespace tgks::obs
