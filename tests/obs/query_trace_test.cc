// Unit tests for the QueryTrace ring buffer and the SearchStats payload
// helpers, plus trace-shape regression checks against a real iterator.

#include <chrono>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/phase_timer.h"
#include "obs/query_trace.h"
#include "obs/search_stats.h"
#include "search/best_path_iterator.h"
#include "testutil/paper_graphs.h"

namespace tgks::obs {
namespace {

TEST(QueryTraceTest, RecordsInOrderBelowCapacity) {
  QueryTrace trace(8);
  trace.Record(TraceEventKind::kPop, 3, 0, 1.5);
  trace.Record(TraceEventKind::kExpand, 4, 0, 2.5);
  trace.Record(TraceEventKind::kDedupHit, 4, -1);
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0);
  EXPECT_EQ(events[0].kind, TraceEventKind::kPop);
  EXPECT_EQ(events[0].node, 3);
  EXPECT_EQ(events[0].iter, 0);
  EXPECT_EQ(events[0].value, 1.5);
  EXPECT_EQ(events[1].kind, TraceEventKind::kExpand);
  EXPECT_EQ(events[2].iter, -1);
  EXPECT_EQ(trace.total_recorded(), 3);
  EXPECT_EQ(trace.dropped(), 0);
}

TEST(QueryTraceTest, OverwritesOldestWhenFull) {
  QueryTrace trace(4);
  for (int i = 0; i < 10; ++i) {
    trace.Record(TraceEventKind::kPop, i, 0, static_cast<double>(i));
  }
  EXPECT_EQ(trace.total_recorded(), 10);
  EXPECT_EQ(trace.dropped(), 6);
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and only the newest four survive.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<size_t>(i)].seq, 6 + i);
    EXPECT_EQ(events[static_cast<size_t>(i)].node, 6 + i);
  }
}

TEST(QueryTraceTest, ResetClearsForReuse) {
  QueryTrace trace(4);
  trace.Record(TraceEventKind::kPrune, 1, 2);
  trace.Reset();
  EXPECT_EQ(trace.total_recorded(), 0);
  EXPECT_EQ(trace.dropped(), 0);
  EXPECT_TRUE(trace.Events().empty());
  trace.Record(TraceEventKind::kKeywordHit, 5, -1, 3.0);
  ASSERT_EQ(trace.Events().size(), 1u);
  EXPECT_EQ(trace.Events()[0].seq, 0);  // Sequence restarts.
}

TEST(QueryTraceTest, EventRenderingIsStable) {
  TraceEvent ev;
  ev.seq = 12;
  ev.kind = TraceEventKind::kPop;
  ev.node = 4;
  ev.iter = 0;
  ev.value = 2.5;
  EXPECT_EQ(ev.ToString(), "seq=12 pop node=4 iter=0 value=2.5");
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kDedupHit), "dedup-hit");
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kKeywordHit), "keyword-hit");
}

TEST(QueryTraceTest, ToStringReportsDrops) {
  QueryTrace trace(2);
  trace.Record(TraceEventKind::kPop, 0, 0);
  trace.Record(TraceEventKind::kPop, 1, 0);
  trace.Record(TraceEventKind::kPop, 2, 0);
  const std::string text = trace.ToString();
  EXPECT_NE(text.find("2 events"), std::string::npos);
  EXPECT_NE(text.find("1 older events dropped"), std::string::npos);
}

TEST(QueryTraceTest, SourceNtdRecordsNoExpandEvent) {
  // Regression: the iterator used to log a kExpand event for the source NTD
  // it seeds itself with, making traces claim an expansion that never
  // happened. Constructing an iterator must record nothing, and over a full
  // drain every kExpand must correspond to an NTD created by expansion —
  // ntds_pushed minus the seed.
  if (StatsCompiledOut()) GTEST_SKIP() << "tracing compiled out";
  testutil::SocialNetworkIds ids;
  const graph::TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  QueryTrace trace(4096);
  search::BestPathIterator::Options options;
  options.trace = &trace;
  options.trace_iter = 0;
  search::BestPathIterator iter(g, ids.mary, options);
  EXPECT_TRUE(trace.Events().empty())
      << "construction must not record events; got "
      << trace.Events()[0].ToString();

  while (iter.Next() != search::kInvalidNtd) {
  }
  const auto events = trace.Events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].kind, TraceEventKind::kPop)
      << "the first event must be the source pop, got "
      << events[0].ToString();
  int64_t expands = 0;
  for (const TraceEvent& ev : events) {
    if (ev.kind == TraceEventKind::kExpand) ++expands;
  }
  EXPECT_EQ(expands, iter.stats().ntds_pushed - 1);
}

TEST(SearchStatsTest, MergeSumsAndTakesHighWaterMax) {
  SearchStats a;
  a.pops = 10;
  a.ntds_created = 20;
  a.heap_high_water = 7;
  a.micros_expand = 100;
  SearchStats b;
  b.pops = 5;
  b.ntds_created = 2;
  b.heap_high_water = 3;
  b.micros_expand = 50;
  b.micros_match = 9;
  a.Merge(b);
  EXPECT_EQ(a.pops, 15);
  EXPECT_EQ(a.ntds_created, 22);
  EXPECT_EQ(a.heap_high_water, 7);  // Max, not sum.
  EXPECT_EQ(a.micros_expand, 150);
  EXPECT_EQ(a.micros_match, 9);
  EXPECT_EQ(a.MicrosTotal(), 159);
  // Max flows the other way too.
  SearchStats c;
  c.heap_high_water = 11;
  a.Merge(c);
  EXPECT_EQ(a.heap_high_water, 11);
}

TEST(SearchStatsTest, ToStringMentionsEveryField) {
  SearchStats s;
  s.pops = 1;
  s.interval_ops = 2;
  const std::string text = s.ToString();
  EXPECT_NE(text.find("pops=1"), std::string::npos);
  EXPECT_NE(text.find("interval_ops=2"), std::string::npos);
  EXPECT_NE(text.find("heap_high_water=0"), std::string::npos);
}

TEST(PhaseTimerTest, AccumulatesSpansIntoTarget) {
  int64_t micros = 0;
  PhaseTimer timer(&micros);
  for (int span = 0; span < 3; ++span) {
    ScopedPhase scope(&timer);
    // Busy-wait a hair so the span is measurable but the test stays fast.
    const auto begin = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - begin <
           std::chrono::microseconds(200)) {
    }
  }
  if (StatsCompiledOut()) {
    EXPECT_EQ(micros, 0);  // The clock is never read.
  } else {
    EXPECT_GE(micros, 3 * 200);
  }
}

TEST(PhaseTimerTest, NullTargetIsANoOp) {
  PhaseTimer timer(nullptr);
  timer.Start();
  timer.Stop();  // Must not crash or write anywhere.
}

TEST(PhaseTimerTest, FeedsOptionalHistogram) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("span_micros");
  int64_t micros = 0;
  PhaseTimer timer(&micros, h);
  { ScopedPhase scope(&timer); }
  { ScopedPhase scope(&timer); }
  if (StatsCompiledOut()) {
    EXPECT_EQ(h->count(), 0);
  } else {
    EXPECT_EQ(h->count(), 2);  // One observation per span.
  }
}

}  // namespace
}  // namespace tgks::obs
