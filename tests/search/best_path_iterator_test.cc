#include "search/best_path_iterator.h"

#include <algorithm>
#include <map>
#include <optional>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_builder.h"
#include "testutil/paper_graphs.h"

namespace tgks::search {
namespace {

using graph::EdgeId;
using graph::GraphBuilder;
using graph::NodeId;
using graph::TemporalGraph;
using temporal::IntervalSet;
using temporal::TimePoint;

// ---------------------------------------------------------------------------
// Brute-force oracle: enumerate every simple backward path from the source
// and record, per (node, instant), the best achievable value of each factor.

struct PathFacts {
  double dist;
  IntervalSet time;
};

void EnumeratePaths(const TemporalGraph& g, NodeId node, double dist,
                    const IntervalSet& time, std::vector<bool>* on_path,
                    std::vector<PathFacts>* out_per_node_paths,
                    std::map<NodeId, std::vector<PathFacts>>* all) {
  (*all)[node].push_back({dist, time});
  (void)out_per_node_paths;
  for (const EdgeId e : g.InEdges(node)) {
    const NodeId next = g.edge(e).src;
    if ((*on_path)[static_cast<size_t>(next)]) continue;
    const IntervalSet narrowed = time.Intersect(g.edge(e).validity);
    if (narrowed.IsEmpty()) continue;
    (*on_path)[static_cast<size_t>(next)] = true;
    EnumeratePaths(g, next,
                   dist + g.edge(e).weight + g.node(next).weight, narrowed,
                   on_path, out_per_node_paths, all);
    (*on_path)[static_cast<size_t>(next)] = false;
  }
}

std::map<NodeId, std::vector<PathFacts>> AllSimplePaths(const TemporalGraph& g,
                                                        NodeId source) {
  std::map<NodeId, std::vector<PathFacts>> all;
  if (g.node(source).validity.IsEmpty()) return all;
  std::vector<bool> on_path(static_cast<size_t>(g.num_nodes()), false);
  on_path[static_cast<size_t>(source)] = true;
  EnumeratePaths(g, source, g.node(source).weight, g.node(source).validity,
                 &on_path, nullptr, &all);
  return all;
}

double FactorValue(RankFactor factor, const PathFacts& p) {
  switch (factor) {
    case RankFactor::kRelevance:
      return -p.dist;
    case RankFactor::kEndTimeDesc:
      return p.time.End();
    case RankFactor::kStartTimeAsc:
      return -p.time.Start();
    case RankFactor::kDurationDesc:
      return static_cast<double>(p.time.Duration());
  }
  return 0;
}

/// Best factor value over all paths source -> node valid at instant t;
/// nullopt when unreachable at t.
std::optional<double> OracleBest(
    const std::map<NodeId, std::vector<PathFacts>>& paths, NodeId node,
    TimePoint t, RankFactor factor) {
  const auto it = paths.find(node);
  if (it == paths.end()) return std::nullopt;
  std::optional<double> best;
  for (const PathFacts& p : it->second) {
    if (!p.time.Contains(t)) continue;
    const double v = FactorValue(factor, p);
    if (!best.has_value() || v > *best) best = v;
  }
  return best;
}

TemporalGraph RandomGraph(Rng* rng, int num_nodes, int num_edges,
                          TimePoint horizon) {
  GraphBuilder b(horizon, graph::ValidityPolicy::kClamp);
  for (int i = 0; i < num_nodes; ++i) {
    // Node validity: one or two random intervals.
    std::vector<temporal::Interval> ivs;
    const int k = 1 + static_cast<int>(rng->Uniform(2));
    for (int j = 0; j < k; ++j) {
      const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
      const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
      ivs.emplace_back(std::min(a, c), std::max(a, c));
    }
    b.AddNode("n" + std::to_string(i), IntervalSet(std::move(ivs)),
              /*weight=*/0.0);
  }
  for (int i = 0; i < num_edges; ++i) {
    const NodeId u = static_cast<NodeId>(rng->Uniform(num_nodes));
    const NodeId v = static_cast<NodeId>(rng->Uniform(num_nodes));
    if (u == v) continue;
    const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
    const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
    const double w = 1.0 + static_cast<double>(rng->Uniform(3));
    b.AddEdge(u, v, IntervalSet{{std::min(a, c), std::max(a, c)}}, w);
  }
  // Clamp policy may still reject never-valid edges; rebuild without them by
  // retrying with a different seed is overkill — instead accept failures by
  // filtering: builder rejects, so construct leniently here.
  auto built = b.Build();
  if (built.ok()) return std::move(built).value();
  // Retry with no edges at all (degenerate but still exercises sources).
  GraphBuilder fallback(horizon);
  for (int i = 0; i < num_nodes; ++i) fallback.AddNode("n" + std::to_string(i));
  auto g = fallback.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

// The snapshot-reducibility property test (Propositions 3.1 and 3.2,
// §3.3): for every node and instant, the iterator's claimed/recorded best
// matches the brute-force best over all simple paths.
class IteratorOracleTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, RankFactor>> {};

TEST_P(IteratorOracleTest, MatchesBruteForceOnRandomGraphs) {
  const auto [seed, factor] = GetParam();
  Rng rng(seed);
  for (int round = 0; round < 8; ++round) {
    const TimePoint horizon = 4 + static_cast<TimePoint>(rng.Uniform(6));
    const TemporalGraph g =
        RandomGraph(&rng, 7, 16 + static_cast<int>(rng.Uniform(8)), horizon);
    for (NodeId source = 0; source < g.num_nodes(); ++source) {
      const auto oracle = AllSimplePaths(g, source);
      BestPathIterator::Options options;
      options.ranking.factors = {factor};
      BestPathIterator iter(g, source, options);
      // Drain the iterator; replay claims in pop order.
      std::map<NodeId, std::map<TimePoint, double>> claimed;
      std::map<NodeId, std::map<TimePoint, double>> best_popped;
      for (NtdId id = iter.Next(); id != kInvalidNtd; id = iter.Next()) {
        const Ntd& ntd = iter.ntd(id);
        const double value =
            FactorValue(factor, PathFacts{ntd.dist, ntd.time});
        for (const TimePoint t : ntd.time.Instants()) {
          claimed[ntd.node].emplace(t, value);  // First pop wins.
          const auto [cell, inserted] = best_popped[ntd.node].emplace(t, value);
          if (!inserted) cell->second = std::max(cell->second, value);
        }
      }
      for (NodeId n = 0; n < g.num_nodes(); ++n) {
        for (TimePoint t = 0; t < horizon; ++t) {
          const auto expect = OracleBest(oracle, n, t, factor);
          if (factor == RankFactor::kDurationDesc) {
            // Subsumption semantics: the best popped NTD covering (n, t)
            // achieves the oracle duration.
            const auto it_n = best_popped.find(n);
            const bool covered =
                it_n != best_popped.end() && it_n->second.count(t) > 0;
            ASSERT_EQ(covered, expect.has_value())
                << "node " << n << " t " << t << " seed " << seed;
            if (covered) {
              EXPECT_EQ(it_n->second.at(t), *expect)
                  << "node " << n << " t " << t << " seed " << seed;
            }
          } else {
            // Partition semantics: the claimant of (n, t) is the best.
            const auto it_n = claimed.find(n);
            const bool covered =
                it_n != claimed.end() && it_n->second.count(t) > 0;
            ASSERT_EQ(covered, expect.has_value())
                << "node " << n << " t " << t << " seed " << seed;
            if (covered) {
              EXPECT_EQ(it_n->second.at(t), *expect)
                  << "node " << n << " t " << t << " seed " << seed
                  << " factor " << RankFactorName(factor);
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndFactors, IteratorOracleTest,
    ::testing::Combine(::testing::Values(11, 22, 33),
                       ::testing::Values(RankFactor::kRelevance,
                                         RankFactor::kEndTimeDesc,
                                         RankFactor::kStartTimeAsc,
                                         RankFactor::kDurationDesc)),
    [](const auto& info) {
      std::string name = "Seed" + std::to_string(std::get<0>(info.param)) +
                         "_" +
                         std::string(RankFactorName(std::get<1>(info.param)));
      std::erase_if(name, [](char c) { return !std::isalnum(
                                           static_cast<unsigned char>(c)) &&
                                       c != '_'; });
      return name;
    });

// ---------------------------------------------------------------------------
// Directed scenario tests.

TEST(BestPathIteratorTest, SingleNodeGraph) {
  GraphBuilder b(5);
  b.AddNode("only", IntervalSet{{1, 3}});
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  BestPathIterator iter(*g, 0, {});
  const NtdId first = iter.Next();
  ASSERT_NE(first, kInvalidNtd);
  EXPECT_EQ(iter.ntd(first).node, 0);
  EXPECT_EQ(iter.ntd(first).time, (IntervalSet{{1, 3}}));
  EXPECT_DOUBLE_EQ(iter.ntd(first).dist, 0.0);
  EXPECT_EQ(iter.Next(), kInvalidNtd);
  EXPECT_EQ(iter.PeekScore(), nullptr);
}

TEST(BestPathIteratorTest, TimeIncompatiblePathNotReported) {
  // Intro example: the Mary-Microsoft-John "path" never coexists; the valid
  // connections run through Bob.
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  BestPathIterator iter(g, ids.john, {});
  while (iter.Next() != kInvalidNtd) {
  }
  // Mary is reached (via Bob chains), never with an empty time.
  const auto at_mary = iter.PoppedAt(ids.mary);
  ASSERT_FALSE(at_mary.empty());
  for (const NtdId id : at_mary) {
    EXPECT_FALSE(iter.ntd(id).time.IsEmpty());
    // Reconstruct the path and check it never routes through Microsoft
    // alone (the invalid shortcut): every reported path has a valid time.
    IntervalSet along = g.node(ids.mary).validity;
    for (const EdgeId e : iter.PathEdges(id)) {
      along = along.Intersect(g.edge(e).validity);
    }
    EXPECT_EQ(along, iter.ntd(id).time);
  }
}

TEST(BestPathIteratorTest, ShortestPathDiffersAcrossInstants) {
  // Mary-John: distance 3 at t6/t7 (via Bob-Ross), 4 at t4 (via Mike-Jim).
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  BestPathIterator iter(g, ids.john, {});
  std::map<TimePoint, double> best_at;
  for (NtdId id = iter.Next(); id != kInvalidNtd; id = iter.Next()) {
    const Ntd& ntd = iter.ntd(id);
    if (ntd.node != ids.mary) continue;
    for (const TimePoint t : ntd.time.Instants()) {
      best_at.emplace(t, ntd.dist);
    }
  }
  ASSERT_TRUE(best_at.count(4));
  ASSERT_TRUE(best_at.count(6));
  ASSERT_TRUE(best_at.count(7));
  EXPECT_DOUBLE_EQ(best_at[4], 4.0);
  EXPECT_DOUBLE_EQ(best_at[6], 3.0);
  EXPECT_DOUBLE_EQ(best_at[7], 3.0);
  EXPECT_FALSE(best_at.count(0));
  EXPECT_FALSE(best_at.count(5));
}

TEST(BestPathIteratorTest, PathEdgesReconstructsForwardPath) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  BestPathIterator iter(g, ids.john, {});
  for (NtdId id = iter.Next(); id != kInvalidNtd; id = iter.Next()) {
    const Ntd& ntd = iter.ntd(id);
    const auto edges = iter.PathEdges(id);
    // Walking the edges from ntd.node must land on the source.
    NodeId cur = ntd.node;
    for (const EdgeId e : edges) {
      EXPECT_EQ(g.edge(e).src, cur);
      cur = g.edge(e).dst;
    }
    EXPECT_EQ(cur, ids.john);
    EXPECT_EQ(edges.size(), static_cast<size_t>(ntd.dist));  // Unit weights.
  }
}

TEST(BestPathIteratorTest, EndTimeRankingPopsLatestFirst) {
  // Example 3.2's shape: pops must come in non-increasing end-time order.
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  BestPathIterator::Options options;
  options.ranking.factors = {RankFactor::kEndTimeDesc};
  BestPathIterator iter(g, ids.mary, options);
  TimePoint last_end = g.timeline_length();
  for (NtdId id = iter.Next(); id != kInvalidNtd; id = iter.Next()) {
    const TimePoint end = iter.ntd(id).time.End();
    EXPECT_LE(end, last_end);
    last_end = end;
  }
}

TEST(BestPathIteratorTest, RelevancePopsInNondecreasingDistance) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  BestPathIterator iter(g, ids.mary, {});
  double last = 0;
  for (NtdId id = iter.Next(); id != kInvalidNtd; id = iter.Next()) {
    EXPECT_GE(iter.ntd(id).dist, last);
    last = iter.ntd(id).dist;
  }
}

TEST(BestPathIteratorTest, DurationExample33KeepsOverlappingNtds) {
  // Example 3.3: p1 valid t0-t9 (dist d1), p2 valid t5-t14 (longer reach).
  // When ranking by duration both NTDs must be kept at the join node so the
  // extension to n' (valid t3-t14) can find the t5-t14 window.
  GraphBuilder b(15);
  const NodeId s = b.AddNode("s", IntervalSet{{0, 14}});
  const NodeId a = b.AddNode("a", IntervalSet{{0, 9}});
  const NodeId c = b.AddNode("c", IntervalSet{{5, 14}});
  const NodeId n = b.AddNode("n", IntervalSet{{0, 14}});
  const NodeId n2 = b.AddNode("nprime", IntervalSet{{3, 14}});
  // Backward traversal uses in-edges: build forward edges n' -> n -> {a,c} -> s.
  b.AddEdge(n2, n, IntervalSet{{3, 14}});
  b.AddEdge(n, a, IntervalSet{{0, 9}});
  b.AddEdge(n, c, IntervalSet{{5, 14}});
  b.AddEdge(a, s, IntervalSet{{0, 9}});
  b.AddEdge(c, s, IntervalSet{{5, 14}});
  auto g = b.Build();
  ASSERT_TRUE(g.ok()) << g.status();

  BestPathIterator::Options options;
  options.ranking.factors = {RankFactor::kDurationDesc};
  BestPathIterator iter(*g, s, options);
  while (iter.Next() != kInvalidNtd) {
  }
  // At n, both windows survive (neither subsumes the other).
  int64_t best_duration_at_n2 = 0;
  for (const NtdId id : iter.PoppedAt(n2)) {
    best_duration_at_n2 =
        std::max(best_duration_at_n2, iter.ntd(id).time.Duration());
  }
  // Longest duration at n' is t5-t14 via c: 10 instants.
  EXPECT_EQ(best_duration_at_n2, 10);
}

TEST(BestPathIteratorTest, DurationSubsumptionPrunesInferiorArrivals) {
  GraphBuilder b(10);
  const NodeId s = b.AddNode("s", IntervalSet{{0, 9}});
  const NodeId mid = b.AddNode("mid", IntervalSet{{0, 9}});
  const NodeId far = b.AddNode("far", IntervalSet{{0, 9}});
  b.AddEdge(mid, s, IntervalSet{{0, 9}});     // Big window first.
  b.AddEdge(mid, s, IntervalSet{{2, 4}});     // Subsumed parallel edge.
  b.AddEdge(far, mid, IntervalSet{{0, 9}});
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  BestPathIterator::Options options;
  options.ranking.factors = {RankFactor::kDurationDesc};
  BestPathIterator iter(*g, s, options);
  while (iter.Next() != kInvalidNtd) {
  }
  EXPECT_GE(iter.stats().subsumption_skips, 1);
  // Only one NTD survives at mid (the [0,9] one subsumes [2,4]).
  EXPECT_EQ(iter.PoppedAt(mid).size(), 1u);
  EXPECT_EQ(iter.PoppedAt(far).size(), 1u);
}

TEST(BestPathIteratorTest, PredicatePruneBlocksExpansion) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  // Only elements valid strictly before t2 may participate; Bob (t2+) is
  // pruned, so Mary cannot be reached from John at all.
  const auto pred = PredicateExpr::Atom(PredicateOp::kPrecedes, 2);
  BestPathIterator::Options options;
  options.prune = pred.get();
  BestPathIterator iter(g, ids.john, options);
  // John's validity starts at 0, so the source qualifies... but John's
  // validity is [0,7]: Start 0 < 2, qualifies. Bob joined at t2: pruned.
  while (iter.Next() != kInvalidNtd) {
  }
  EXPECT_TRUE(iter.PoppedAt(ids.bob).empty());
  EXPECT_TRUE(iter.PoppedAt(ids.mary).empty() ||
              !iter.PoppedAt(ids.mary).empty());  // Mary only via Microsoft.
  // Via Microsoft the path validity is [5,7] ∩ [0,2] = empty, so Mary stays
  // unreached.
  EXPECT_TRUE(iter.PoppedAt(ids.mary).empty());
}

TEST(BestPathIteratorTest, SourceFailingPredicateStartsExhausted) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const auto pred = PredicateExpr::Atom(PredicateOp::kPrecedes, 2);
  BestPathIterator::Options options;
  options.prune = pred.get();
  // Ross exists only from t5: cannot precede t2.
  BestPathIterator iter(g, ids.ross, options);
  EXPECT_EQ(iter.PeekScore(), nullptr);
  EXPECT_EQ(iter.Next(), kInvalidNtd);
}

TEST(BestPathIteratorTest, StatsAreConsistent) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  BestPathIterator iter(g, ids.mary, {});
  int64_t pops = 0;
  while (iter.Next() != kInvalidNtd) ++pops;
  const IteratorStats& s = iter.stats();
  EXPECT_EQ(s.ntds_popped, pops);
  EXPECT_EQ(s.ntds_pushed, iter.num_ntds());
  EXPECT_GE(s.ntds_pushed, s.ntds_popped);
  EXPECT_GT(s.nodes_reached, 0);
  EXPECT_LE(s.nodes_reached, g.num_nodes());
}

}  // namespace
}  // namespace tgks::search
