// Cached-vs-uncached differential sweep (docs/caching.md): across 60 random
// temporal graphs, every search must return bit-identical results and
// identical work counters whether the in-engine query caches (match sets +
// viability memoization) are enabled or not — on a cold cache AND on a warm
// one. The warm pass also asserts the caches actually served hits, so a
// silently disabled cache cannot pass as "identical".

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/query_caches.h"
#include "common/random.h"
#include "graph/graph_builder.h"
#include "graph/inverted_index.h"
#include "search/search_engine.h"

namespace tgks::search {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TemporalGraph;
using temporal::IntervalSet;
using temporal::TimePoint;

constexpr int kGraphs = 60;

TemporalGraph RandomGraph(Rng* rng, int num_nodes, int num_edges,
                          TimePoint horizon) {
  while (true) {
    GraphBuilder b(horizon, graph::ValidityPolicy::kClamp);
    for (int i = 0; i < num_nodes; ++i) {
      const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
      const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
      // Three nodes share each label word, so keyword postings have real
      // fan-out and the match-set cache caches non-trivial lists.
      b.AddNode("w" + std::to_string(i % (num_nodes / 3)),
                IntervalSet{{std::min(a, c), std::max(a, c)}});
    }
    for (int i = 0; i < num_edges; ++i) {
      const NodeId u = static_cast<NodeId>(rng->Uniform(num_nodes));
      const NodeId v = static_cast<NodeId>(rng->Uniform(num_nodes));
      if (u == v) continue;
      const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
      const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
      b.AddEdge(u, v, IntervalSet{{std::min(a, c), std::max(a, c)}});
    }
    auto g = b.Build();
    if (g.ok()) return std::move(g).value();
  }
}

/// Asserts byte-for-byte equivalence of everything a caller can observe,
/// except the cache_* counters and wall times (the only documented deltas).
void ExpectSameResponse(const SearchResponse& expected,
                        const SearchResponse& actual) {
  ASSERT_EQ(expected.results.size(), actual.results.size());
  for (size_t i = 0; i < expected.results.size(); ++i) {
    EXPECT_EQ(expected.results[i].Signature(), actual.results[i].Signature());
    EXPECT_EQ(expected.results[i].time, actual.results[i].time);
    EXPECT_EQ(expected.results[i].total_weight,
              actual.results[i].total_weight);
  }
  EXPECT_EQ(expected.stop_reason, actual.stop_reason);
  EXPECT_EQ(expected.truncated, actual.truncated);
  const SearchCounters& e = expected.counters;
  const SearchCounters& a = actual.counters;
  EXPECT_EQ(e.iterators, a.iterators);
  EXPECT_EQ(e.pops, a.pops);
  EXPECT_EQ(e.useless_pops, a.useless_pops);
  EXPECT_EQ(e.ntds_created, a.ntds_created);
  EXPECT_EQ(e.edges_scanned, a.edges_scanned);
  EXPECT_EQ(e.nodes_visited, a.nodes_visited);
  EXPECT_EQ(e.candidates, a.candidates);
  EXPECT_EQ(e.duplicates, a.duplicates);
  EXPECT_EQ(e.results, a.results);
  EXPECT_EQ(e.subsumption_skips, a.subsumption_skips);
  EXPECT_EQ(e.subsumption_evictions, a.subsumption_evictions);
  EXPECT_EQ(e.reachability_prunes, a.reachability_prunes);
}

TEST(CacheDifferentialTest, SixtyGraphsBitIdenticalColdAndWarm) {
  Rng rng(0xcac4e);
  int64_t total_match_hits = 0;
  int64_t total_viability_hits = 0;
  for (int gi = 0; gi < kGraphs; ++gi) {
    const TemporalGraph g = RandomGraph(&rng, 12, 26, 8);
    const graph::InvertedIndex index(g);
    const SearchEngine engine(g, &index);
    cache::QueryCaches caches;

    SearchOptions uncached;
    uncached.k = 5;
    uncached.reachability_prune = true;  // Exercise the viability path.
    SearchOptions cached = uncached;
    cached.query_caches = &caches;

    std::vector<Query> queries;
    for (int qi = 0; qi < 3; ++qi) {
      Query q;
      q.keywords = {
          "w" + std::to_string(rng.Uniform(4)),
          "w" + std::to_string(rng.Uniform(4)),
      };
      if (qi == 2) q.ranking.factors = {RankFactor::kDurationDesc};
      queries.push_back(std::move(q));
    }

    for (int pass = 0; pass < 2; ++pass) {  // Pass 0 cold, pass 1 warm.
      for (const Query& q : queries) {
        auto reference = engine.Search(q, uncached);
        ASSERT_TRUE(reference.ok()) << reference.status().ToString();
        auto with_caches = engine.Search(q, cached);
        ASSERT_TRUE(with_caches.ok()) << with_caches.status().ToString();
        ExpectSameResponse(*reference, *with_caches);
        if (pass == 1) {
          // Warm pass: every keyword and viability lookup must hit.
          EXPECT_EQ(with_caches->counters.cache_match_misses, 0);
          EXPECT_EQ(with_caches->counters.cache_viability_misses, 0);
          total_match_hits += with_caches->counters.cache_match_hits;
          total_viability_hits += with_caches->counters.cache_viability_hits;
        }
      }
    }
  }
  // The differential is only meaningful if the caches actually served.
  EXPECT_EQ(total_match_hits, kGraphs * 3 * 2);
  EXPECT_GT(total_viability_hits, 0);
}

TEST(CacheDifferentialTest, ExplicitMatchProtocolBitIdentical) {
  // SearchWithMatches (the social-workload protocol) skips the match-set
  // cache but shares the viability cache; same differential contract.
  Rng rng(0xbeef);
  for (int gi = 0; gi < 20; ++gi) {
    const TemporalGraph g = RandomGraph(&rng, 12, 26, 8);
    const SearchEngine engine(g);
    cache::QueryCaches caches;

    SearchOptions uncached;
    uncached.k = 5;
    uncached.reachability_prune = true;
    SearchOptions cached = uncached;
    cached.query_caches = &caches;

    std::vector<std::vector<NodeId>> matches;
    for (int ki = 0; ki < 2; ++ki) {
      std::vector<NodeId> list;
      for (const uint64_t v : rng.SampleWithoutReplacement(12, 4)) {
        list.push_back(static_cast<NodeId>(v));
      }
      std::sort(list.begin(), list.end());
      matches.push_back(std::move(list));
    }
    Query q;
    q.keywords = {"a", "b"};

    for (int pass = 0; pass < 2; ++pass) {
      auto reference = engine.SearchWithMatches(q, matches, uncached);
      ASSERT_TRUE(reference.ok());
      auto with_caches = engine.SearchWithMatches(q, matches, cached);
      ASSERT_TRUE(with_caches.ok());
      ExpectSameResponse(*reference, *with_caches);
      if (pass == 1) {
        EXPECT_EQ(with_caches->counters.cache_viability_misses, 0);
        EXPECT_GT(with_caches->counters.cache_viability_hits, 0);
      }
    }
  }
}

}  // namespace
}  // namespace tgks::search
