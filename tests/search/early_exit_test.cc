// Early-exit finalization (max_pops / deadline / cancellation) and
// scheduling-determinism guarantees:
//  - every exit path returns results sorted best-first and truncated to k;
//  - repeated runs of the same query produce bit-identical orderings
//    (the QueueCompare tie-break pops older NTDs first, and equal-score
//    iterators are scheduled by ascending index).

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "graph/inverted_index.h"
#include "search/best_path_iterator.h"
#include "search/query_parser.h"
#include "search/search_engine.h"
#include "testutil/paper_graphs.h"

namespace tgks::search {
namespace {

using graph::GraphBuilder;
using graph::InvertedIndex;
using graph::NodeId;
using graph::TemporalGraph;
using temporal::IntervalSet;

Query MustParse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << text << ": " << q.status();
  return std::move(q).value();
}

void ExpectSortedBestFirst(const SearchResponse& r) {
  for (size_t i = 1; i < r.results.size(); ++i) {
    EXPECT_FALSE(ScoreBetter(r.results[i].score, r.results[i - 1].score)) << i;
  }
}

// Star fixture: 5 "alpha" and 5 "beta" matches around a hub, all edge
// weights distinct. Every (alpha_i, hub, beta_j) pair is a result, and the
// global best-first pop order is fully determined: 10 source pops, then hub
// pops in ascending spoke weight. After 14 pops exactly four results exist
// (weights 2.05, 2.15, 2.15, 2.25), so max_pops = 14 exits with more
// results found than k = 2 — exercising sort + truncate on the early path.
TemporalGraph MakeStarGraph() {
  GraphBuilder b(4);
  const IntervalSet always{{0, 3}};
  const NodeId hub = b.AddNode("hub", always);
  for (int i = 0; i < 5; ++i) {
    const NodeId a = b.AddNode("alpha", always);
    b.AddEdge(a, hub, always, 1.0 + 0.1 * i);
    b.AddEdge(hub, a, always, 1.0 + 0.1 * i);
  }
  for (int i = 0; i < 5; ++i) {
    const NodeId n = b.AddNode("beta", always);
    b.AddEdge(n, hub, always, 1.05 + 0.1 * i);
    b.AddEdge(hub, n, always, 1.05 + 0.1 * i);
  }
  return std::move(b.Build()).value();
}

TEST(EarlyExitTest, MaxPopsExitSortsAndTruncatesToK) {
  const TemporalGraph g = MakeStarGraph();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  SearchOptions options;
  options.k = 2;
  options.bound = UpperBoundKind::kAccurate;  // Never fires this early.
  options.max_pops = 14;
  auto r = engine.Search(MustParse("alpha, beta"), options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->truncated);
  EXPECT_EQ(r->stop_reason, StopReason::kMaxPops);
  EXPECT_FALSE(r->deadline_exceeded);
  EXPECT_FALSE(r->cancelled);
  EXPECT_LE(r->counters.pops, 14);
  // Four results were generated, but the response carries the best k of
  // them, sorted.
  EXPECT_EQ(r->counters.results, 4);
  ASSERT_EQ(r->results.size(), 2u);
  ExpectSortedBestFirst(*r);
  EXPECT_NEAR(r->results[0].total_weight, 2.05, 1e-9);
  EXPECT_NEAR(r->results[1].total_weight, 2.15, 1e-9);
}

TEST(EarlyExitTest, CancellationTokenStopsImmediately) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  std::atomic<bool> cancel{true};  // Pre-set: cancel at the first pop check.
  SearchOptions options;
  options.k = 0;
  options.cancel = &cancel;
  auto r = engine.Search(MustParse("mary, john"), options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->cancelled);
  EXPECT_TRUE(r->truncated);
  EXPECT_EQ(r->stop_reason, StopReason::kCancelled);
  EXPECT_FALSE(r->deadline_exceeded);
  EXPECT_EQ(r->counters.pops, 0);
  EXPECT_TRUE(r->results.empty());
}

TEST(EarlyExitTest, UnsetCancelTokenAndNoDeadlineRunToCompletion) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  std::atomic<bool> cancel{false};
  SearchOptions options;
  options.k = 0;
  options.cancel = &cancel;
  options.deadline_ms = 0;  // <= 0 disables the deadline entirely.
  auto r = engine.Search(MustParse("mary, john"), options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->exhausted);
  EXPECT_EQ(r->stop_reason, StopReason::kExhausted);
  EXPECT_FALSE(r->cancelled);
  EXPECT_FALSE(r->deadline_exceeded);
  EXPECT_FALSE(r->truncated);
  EXPECT_FALSE(r->results.empty());
}

TEST(EarlyExitTest, StopReasonNamesAreStable) {
  EXPECT_EQ(StopReasonName(StopReason::kExhausted), "exhausted");
  EXPECT_EQ(StopReasonName(StopReason::kBound), "bound");
  EXPECT_EQ(StopReasonName(StopReason::kMaxPops), "max_pops");
  EXPECT_EQ(StopReasonName(StopReason::kDeadline), "deadline");
  EXPECT_EQ(StopReasonName(StopReason::kCancelled), "cancelled");
}

// Determinism -------------------------------------------------------------

std::vector<std::string> OrderedSignatures(const SearchResponse& r) {
  std::vector<std::string> sigs;
  sigs.reserve(r.results.size());
  for (const auto& t : r.results) sigs.push_back(t.Signature());
  return sigs;
}

TEST(DeterminismTest, RepeatedRunsProduceIdenticalOrderings) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  for (const char* text :
       {"mary, john", "mary, john rank by ascending order of result start "
                      "time",
        "mary, bob rank by descending order of duration"}) {
    const Query q = MustParse(text);
    SearchOptions options;
    options.k = 0;
    auto first = engine.Search(q, options);
    ASSERT_TRUE(first.ok()) << first.status();
    const auto expected = OrderedSignatures(*first);
    for (int run = 0; run < 3; ++run) {
      auto again = engine.Search(q, options);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(OrderedSignatures(*again), expected) << text;
      for (size_t i = 0; i < again->results.size(); ++i) {
        EXPECT_EQ(again->results[i].score, first->results[i].score);
      }
    }
  }
}

TEST(DeterminismTest, QueueCompareBreaksScoreTiesByAge) {
  // Two in-neighbors of the source at identical distance: the NTD created
  // first (edge insertion order) must pop first. This pins the QueueCompare
  // contract `a.id > b.id` — older (smaller) NtdId wins equal scores — that
  // batch determinism rests on.
  GraphBuilder b(4);
  const IntervalSet always{{0, 3}};
  const NodeId src = b.AddNode("src", always);
  const NodeId first = b.AddNode("first", always);
  const NodeId second = b.AddNode("second", always);
  b.AddEdge(first, src, always, 1.0);
  b.AddEdge(second, src, always, 1.0);
  const TemporalGraph g = std::move(b.Build()).value();

  BestPathIterator::Options options;  // Default relevance ranking.
  BestPathIterator iter(g, src, options);
  const NtdId source_ntd = iter.Next();
  ASSERT_NE(source_ntd, kInvalidNtd);
  EXPECT_EQ(iter.ntd(source_ntd).node, src);
  const NtdId a = iter.Next();
  const NtdId b2 = iter.Next();
  ASSERT_NE(a, kInvalidNtd);
  ASSERT_NE(b2, kInvalidNtd);
  // Equal scores (-1.0 each): creation order decides, and `first`'s NTD was
  // created first because its edge was inserted first.
  EXPECT_LT(a, b2);
  EXPECT_EQ(iter.ntd(a).node, first);
  EXPECT_EQ(iter.ntd(b2).node, second);
  EXPECT_EQ(iter.Next(), kInvalidNtd);
}

}  // namespace
}  // namespace tgks::search
