// Edge cases deliberately outside the main suites: parser robustness on
// adversarial input, weighted graphs, and degenerate graph shapes.

#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_builder.h"
#include "graph/inverted_index.h"
#include "search/query_parser.h"
#include "search/search_engine.h"

namespace tgks::search {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TemporalGraph;
using temporal::IntervalSet;

// Parser fuzz: random token soup must never crash; it either parses or
// returns an error status.
TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  static constexpr const char* kTokens[] = {
      "result", "time",  "precedes", "follows",  "meets", "overlaps",
      "contains", "contained", "by", "and", "or", "not",  "rank",
      "by", "descending", "ascending", "order", "of", "relevance",
      "duration", "start", "end", "(", ")", "[", "]", ",", "5", "-3",
      "word", "\"quoted phrase\"", "\"", "@", "2016"};
  Rng rng(31415);
  int parsed = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    std::string text;
    const int len = 1 + static_cast<int>(rng.Uniform(12));
    for (int i = 0; i < len; ++i) {
      text += kTokens[rng.Uniform(std::size(kTokens))];
      text += ' ';
    }
    const auto q = ParseQuery(text);
    parsed += q.ok();
    if (q.ok()) {
      EXPECT_TRUE(q->Validate().ok()) << text;
      // Whatever parses must also render and re-parse.
      EXPECT_TRUE(ParseQuery(q->ToString()).ok()) << text;
    }
  }
  EXPECT_GT(parsed, 0);  // The grammar is reachable by chance.
}

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(2718);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string text;
    const int len = static_cast<int>(rng.Uniform(40));
    for (int i = 0; i < len; ++i) {
      text += static_cast<char>(32 + rng.Uniform(95));
    }
    (void)ParseQuery(text);  // Must not crash; outcome unconstrained.
  }
}

TEST(WeightedGraphTest, NodeAndEdgeWeightsEnterScores) {
  // source weight + sum(edge weight + node weight) along the tree.
  GraphBuilder b(4);
  const NodeId a = b.AddNode("alpha", IntervalSet{{0, 3}}, 1.0);
  const NodeId mid = b.AddNode("mid", IntervalSet{{0, 3}}, 2.0);
  const NodeId z = b.AddNode("omega", IntervalSet{{0, 3}}, 4.0);
  b.AddEdge(a, mid, IntervalSet{{0, 3}}, 10.0);
  b.AddEdge(mid, z, IntervalSet{{0, 3}}, 20.0);
  b.AddEdge(mid, a, IntervalSet{{0, 3}}, 10.0);
  b.AddEdge(z, mid, IntervalSet{{0, 3}}, 20.0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const graph::InvertedIndex index(*g);
  const SearchEngine engine(*g, &index);
  auto q = ParseQuery("alpha, omega");
  ASSERT_TRUE(q.ok());
  SearchOptions options;
  options.k = 0;
  auto r = engine.Search(*q, options);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->results.empty());
  // Any rooting of the alpha-mid-omega chain weighs nodes 1+2+4 plus edges
  // 10+20 = 37.
  EXPECT_DOUBLE_EQ(r->results.front().total_weight, 37.0);
}

TEST(DegenerateGraphTest, EmptyGraphAndIsolatedMatches) {
  GraphBuilder b(5);
  auto empty = b.Build();
  ASSERT_TRUE(empty.ok());
  const SearchEngine engine(*empty);
  auto q = ParseQuery("anything");
  ASSERT_TRUE(q.ok());
  auto r = engine.SearchWithMatches(*q, {{}}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->results.empty());
  EXPECT_TRUE(r->exhausted);
}

TEST(DegenerateGraphTest, SelfLoopsDoNotBreakSearch) {
  GraphBuilder b(4);
  const NodeId a = b.AddNode("left", IntervalSet{{0, 3}});
  const NodeId z = b.AddNode("right", IntervalSet{{0, 3}});
  b.AddEdge(a, a, IntervalSet{{0, 3}});  // Self loop.
  b.AddEdge(a, z, IntervalSet{{1, 2}});
  b.AddEdge(z, a, IntervalSet{{1, 2}});
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const graph::InvertedIndex index(*g);
  const SearchEngine engine(*g, &index);
  auto q = ParseQuery("left, right");
  ASSERT_TRUE(q.ok());
  SearchOptions options;
  options.k = 0;
  auto r = engine.Search(*q, options);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->results.empty());
  EXPECT_EQ(r->results.front().time, (IntervalSet{{1, 2}}));
}

TEST(DegenerateGraphTest, ParallelEdgesPickCheapest) {
  GraphBuilder b(4);
  const NodeId a = b.AddNode("left", IntervalSet{{0, 3}});
  const NodeId z = b.AddNode("right", IntervalSet{{0, 3}});
  b.AddEdge(z, a, IntervalSet{{0, 3}}, 5.0);
  b.AddEdge(z, a, IntervalSet{{0, 3}}, 1.0);  // Cheaper parallel edge.
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const graph::InvertedIndex index(*g);
  const SearchEngine engine(*g, &index);
  auto q = ParseQuery("left, right");
  ASSERT_TRUE(q.ok());
  SearchOptions options;
  options.k = 1;
  options.bound = UpperBoundKind::kAccurate;
  auto r = engine.Search(*q, options);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->results.size(), 1u);
  EXPECT_DOUBLE_EQ(r->results[0].total_weight, 1.0);
}

TEST(DegenerateGraphTest, RepeatedKeywordInQuery) {
  // "mary mary" — both keywords share one match set; the single node
  // covers both.
  GraphBuilder b(4);
  b.AddNode("mary", IntervalSet{{0, 3}});
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  const graph::InvertedIndex index(*g);
  const SearchEngine engine(*g, &index);
  auto q = ParseQuery("mary, mary");
  ASSERT_TRUE(q.ok());
  SearchOptions options;
  options.k = 0;
  auto r = engine.Search(*q, options);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->results.size(), 1u);
  EXPECT_TRUE(r->results[0].edges.empty());
}

}  // namespace
}  // namespace tgks::search
