// Engine-level property sweep: on random temporal graphs, for every ranking
// factor, bound kind, and predicate shape, every returned result must be
// well-formed per Definition 2.2, the ranking order must hold, top-k must be
// a prefix of the exhaustive run's ordering (for the accurate bound), and
// the containedby-prune extension must not change the result set.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_builder.h"
#include "search/query_parser.h"
#include "search/search_engine.h"

namespace tgks::search {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TemporalGraph;
using temporal::IntervalSet;
using temporal::TimePoint;

TemporalGraph RandomGraph(Rng* rng, int num_nodes, int num_edges,
                          TimePoint horizon) {
  while (true) {
    GraphBuilder b(horizon, graph::ValidityPolicy::kClamp);
    for (int i = 0; i < num_nodes; ++i) {
      const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
      const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
      b.AddNode("n" + std::to_string(i),
                IntervalSet{{std::min(a, c), std::max(a, c)}});
    }
    for (int i = 0; i < num_edges; ++i) {
      const NodeId u = static_cast<NodeId>(rng->Uniform(num_nodes));
      const NodeId v = static_cast<NodeId>(rng->Uniform(num_nodes));
      if (u == v) continue;
      const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
      const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
      b.AddEdge(u, v, IntervalSet{{std::min(a, c), std::max(a, c)}});
    }
    auto g = b.Build();
    if (g.ok()) return std::move(g).value();
  }
}

std::vector<NodeId> RandomMatches(Rng* rng, const TemporalGraph& g, int k) {
  std::vector<NodeId> out;
  for (const uint64_t v : rng->SampleWithoutReplacement(
           static_cast<uint64_t>(g.num_nodes()), static_cast<uint64_t>(k))) {
    out.push_back(static_cast<NodeId>(v));
  }
  return out;
}

void ExpectWellFormed(const TemporalGraph& g, const Query& q,
                      const SearchResponse& r) {
  for (const ResultTree& tree : r.results) {
    ASSERT_FALSE(tree.time.IsEmpty());
    IntervalSet time = g.node(tree.root).validity;
    for (const NodeId n : tree.nodes) time = time.Intersect(g.node(n).validity);
    for (const auto e : tree.edges) time = time.Intersect(g.edge(e).validity);
    EXPECT_EQ(time, tree.time);
    EXPECT_EQ(tree.edges.size() + 1, tree.nodes.size());
    if (q.predicate != nullptr) {
      EXPECT_TRUE(q.predicate->EvalResultTime(tree.time));
    }
  }
  for (size_t i = 1; i < r.results.size(); ++i) {
    EXPECT_FALSE(ScoreBetter(r.results[i].score, r.results[i - 1].score));
  }
}

class EnginePropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, RankFactor>> {};

TEST_P(EnginePropertyTest, WellFormedAndAccurateTopKIsPrefix) {
  const auto [seed, factor] = GetParam();
  Rng rng(seed);
  for (int round = 0; round < 2; ++round) {
    const TemporalGraph g = RandomGraph(&rng, 12, 26, 8);
    const std::vector<std::vector<NodeId>> matches = {
        RandomMatches(&rng, g, 3), RandomMatches(&rng, g, 3)};
    Query q;
    q.keywords = {"a", "b"};
    q.ranking.factors = {factor};
    const SearchEngine engine(g);

    SearchOptions all;
    all.k = 0;
    auto exhaustive = engine.SearchWithMatches(q, matches, all);
    ASSERT_TRUE(exhaustive.ok());
    ExpectWellFormed(g, q, *exhaustive);

    SearchOptions topk;
    topk.k = 3;
    topk.bound = UpperBoundKind::kAccurate;
    auto top = engine.SearchWithMatches(q, matches, topk);
    ASSERT_TRUE(top.ok());
    ExpectWellFormed(g, q, *top);
    ASSERT_EQ(top->results.size(),
              std::min<size_t>(3, exhaustive->results.size()));
    for (size_t i = 0; i < top->results.size(); ++i) {
      // Scores must match the exhaustive prefix (trees may differ on ties).
      EXPECT_EQ(top->results[i].score, exhaustive->results[i].score);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnginePropertyTest,
    ::testing::Combine(::testing::Values(7, 9),
                       ::testing::Values(RankFactor::kRelevance,
                                         RankFactor::kEndTimeDesc,
                                         RankFactor::kStartTimeAsc,
                                         RankFactor::kDurationDesc)),
    [](const auto& info) {
      std::string name =
          "Seed" + std::to_string(std::get<0>(info.param)) + "_" +
          std::string(RankFactorName(std::get<1>(info.param)));
      std::erase_if(name, [](char c) {
        return !std::isalnum(static_cast<unsigned char>(c)) && c != '_';
      });
      return name;
    });

TEST(EnginePredicatePropertyTest, AllPredicatesWellFormedAndPruneConsistent) {
  Rng rng(2024);
  const TemporalGraph g = RandomGraph(&rng, 14, 30, 10);
  const std::vector<std::vector<NodeId>> matches = {RandomMatches(&rng, g, 3),
                                                    RandomMatches(&rng, g, 3)};
  const char* predicates[] = {
      "a, b result time precedes 5",
      "a, b result time follows 4",
      "a, b result time meets 3",
      "a, b result time overlaps [3,6]",
      "a, b result time contains [4,5]",
      "a, b result time contained by [2,8]",
      "a, b result time precedes 6 and result time follows 2",
      "a, b result time contains 3 or result time contains 7",
      "a, b not result time follows 6",
  };
  const SearchEngine engine(g);
  for (const char* text : predicates) {
    auto q = ParseQuery(text);
    ASSERT_TRUE(q.ok()) << text;
    SearchOptions options;
    options.k = 0;
    auto r = engine.SearchWithMatches(*q, matches, options);
    ASSERT_TRUE(r.ok()) << text;
    ExpectWellFormed(g, *q, *r);
    // Cross-check against predicate-free search + post-filter: pruning must
    // not lose any qualifying result.
    auto q_plain = ParseQuery("a, b");
    ASSERT_TRUE(q_plain.ok());
    auto r_plain = engine.SearchWithMatches(*q_plain, matches, options);
    ASSERT_TRUE(r_plain.ok());
    std::set<std::string> qualifying;
    for (const auto& tree : r_plain->results) {
      if ((*q).predicate->EvalResultTime(tree.time)) {
        qualifying.insert(tree.Signature());
      }
    }
    std::set<std::string> found;
    for (const auto& tree : r->results) found.insert(tree.Signature());
    EXPECT_EQ(found, qualifying) << text;
  }
}

TEST(EnginePredicatePropertyTest, ContainedByPruneExtensionLossless) {
  Rng rng(4048);
  for (int round = 0; round < 3; ++round) {
    const TemporalGraph g = RandomGraph(&rng, 12, 26, 10);
    const std::vector<std::vector<NodeId>> matches = {
        RandomMatches(&rng, g, 3), RandomMatches(&rng, g, 3)};
    auto q = ParseQuery("a, b result time contained by [2,7]");
    ASSERT_TRUE(q.ok());
    const SearchEngine engine(g);
    SearchOptions plain;
    plain.k = 0;
    SearchOptions pruned = plain;
    pruned.containedby_prune = true;
    auto r_plain = engine.SearchWithMatches(*q, matches, plain);
    auto r_pruned = engine.SearchWithMatches(*q, matches, pruned);
    ASSERT_TRUE(r_plain.ok());
    ASSERT_TRUE(r_pruned.ok());
    std::set<std::string> a, b;
    for (const auto& tree : r_plain->results) a.insert(tree.Signature());
    for (const auto& tree : r_pruned->results) b.insert(tree.Signature());
    EXPECT_EQ(a, b);
    EXPECT_LE(r_pruned->counters.pops, r_plain->counters.pops);
  }
}

TEST(EngineCombinedRankingTest, LexicographicOrderRespected) {
  Rng rng(515);
  const TemporalGraph g = RandomGraph(&rng, 12, 26, 8);
  const std::vector<std::vector<NodeId>> matches = {RandomMatches(&rng, g, 3),
                                                    RandomMatches(&rng, g, 3)};
  auto q = ParseQuery(
      "a, b rank by descending order of result end time, "
      "descending order of relevance");
  ASSERT_TRUE(q.ok());
  const SearchEngine engine(g);
  SearchOptions options;
  options.k = 0;
  auto r = engine.SearchWithMatches(*q, matches, options);
  ASSERT_TRUE(r.ok());
  for (size_t i = 1; i < r->results.size(); ++i) {
    const auto& prev = r->results[i - 1];
    const auto& cur = r->results[i];
    EXPECT_GE(prev.time.End(), cur.time.End());
    if (prev.time.End() == cur.time.End()) {
      EXPECT_LE(prev.total_weight, cur.total_weight);
    }
  }
}

}  // namespace
}  // namespace tgks::search
