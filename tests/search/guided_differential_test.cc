// Differential soundness oracle for distance-guided search.
//
// Guided search (SearchOptions::guided_search) reorders pop priorities with
// admissible cone-floor caps, prunes infinity-floor nodes, and skips
// hopeless meetings — all of which must leave the returned trees untouched.
// This suite runs 60 seeded random graphs (the 10-seed x 6-round shape of
// the reachability and reducibility harnesses) through every execution
// cell the engine exposes:
//
//     {sequential, parallel} x {unpruned, reachability-pruned}
//       x {top-k under the exact kAccurate bound, exhaustive (k <= 0)}
//
// and asserts guided == unguided in every cell, each at the strength the
// theory supports: exhaustive runs must be bit-identical (the frontier
// drains fully, so ordering cannot matter), and bounded kAccurate runs
// must agree on the exact weight profile and on every tree strictly
// better than the kth weight (the caps are admissible upper bounds, so
// the §4.2 stop never fires while an unseen tree could still BEAT the
// kth; trees TIED with the kth weight may legally differ with discovery
// order — see ExpectSameBoundedTopK). The
// heuristic kEmpirical/kAverage bounds are deliberately absent here — their
// stop tests may legally fire at a different pop (see docs/reachability.md,
// "Bounded stops"); the golden work-count gate pins those byte-for-byte
// instead (scripts/workcount_check.sh --guided).

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_builder.h"
#include "graph/inverted_index.h"
#include "search/query_parser.h"
#include "search/search_engine.h"

namespace tgks::search {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TemporalGraph;
using temporal::IntervalSet;
using temporal::TimePoint;

/// Same structural shape as the reachability-oracle generator, but node
/// labels are drawn from a small pool so every keyword has a handful of
/// matches (guided search is interesting only when match sets and floors
/// interact).
TemporalGraph RandomLabeledGraph(Rng* rng, int num_nodes, int num_edges,
                                 TimePoint horizon) {
  static const char* kPool[] = {"alpha", "beta", "gamma", "delta", "eps"};
  while (true) {
    GraphBuilder b(horizon, graph::ValidityPolicy::kClamp);
    for (int i = 0; i < num_nodes; ++i) {
      const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
      const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
      b.AddNode(kPool[rng->Uniform(5)],
                IntervalSet{{std::min(a, c), std::max(a, c)}},
                static_cast<double>(rng->Uniform(3)));
    }
    int added = 0;
    for (int i = 0; i < num_edges * 3 && added < num_edges; ++i) {
      const NodeId u = static_cast<NodeId>(rng->Uniform(num_nodes));
      const NodeId v = static_cast<NodeId>(rng->Uniform(num_nodes));
      if (u == v) continue;
      const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
      const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
      b.AddEdge(u, v, IntervalSet{{std::min(a, c), std::max(a, c)}},
                static_cast<double>(1 + rng->Uniform(4)));
      ++added;
    }
    auto g = b.Build();
    if (g.ok()) return std::move(g).value();
  }
}

/// Exact textual fingerprint of one tree: every structural field.
std::string TreeFingerprint(const ResultTree& tree) {
  std::ostringstream out;
  out << "root=" << tree.root << " w=" << tree.total_weight
      << " t=" << tree.time.ToString() << " nodes=";
  for (const NodeId n : tree.nodes) out << n << ",";
  out << " edges=";
  for (const graph::EdgeId e : tree.edges) out << e << ",";
  out << " kw=";
  for (const NodeId n : tree.keyword_nodes) out << n << ",";
  return out.str();
}

/// Exact textual fingerprint of a full response, in rank order.
std::string Fingerprint(const SearchResponse& r) {
  std::ostringstream out;
  out << "stop=" << StopReasonName(r.stop_reason)
      << " n=" << r.results.size() << "\n";
  for (const ResultTree& tree : r.results) {
    out << TreeFingerprint(tree) << "\n";
  }
  return out.str();
}

/// Oracle for a bounded kAccurate run: the admissibility theorem pins the
/// WEIGHT PROFILE of the top-k exactly (no unseen tree could have beaten
/// the kth weight when the stop fired), and with it every tree strictly
/// better than the kth weight — a strictly-better tree left out of either
/// run would contradict correctness, and Finalize's deterministic sort
/// makes the shared prefix order-identical. Trees TIED with the kth weight
/// are the one legal divergence: the stop may fire before every tied tree
/// has been discovered, so which tied trees fill the tail depends on pop
/// order, which is exactly what guidance perturbs.
void ExpectSameBoundedTopK(const SearchResponse& off,
                           const SearchResponse& on,
                           const std::string& context) {
  ASSERT_EQ(off.results.size(), on.results.size()) << context;
  for (size_t i = 0; i < off.results.size(); ++i) {
    ASSERT_DOUBLE_EQ(off.results[i].total_weight, on.results[i].total_weight)
        << context << ": weight profile diverged at rank " << i + 1;
  }
  if (off.results.empty()) return;
  const double kth = off.results.back().total_weight;
  for (size_t i = 0; i < off.results.size(); ++i) {
    if (off.results[i].total_weight >= kth) break;
    EXPECT_EQ(TreeFingerprint(off.results[i]), TreeFingerprint(on.results[i]))
        << context << ": strictly-better-than-kth tree diverged at rank "
        << i + 1;
  }
}

class GuidedDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GuidedDifferentialTest, GuidedEqualsUnguidedInEveryCell) {
  Rng rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    const TimePoint horizon = 4 + static_cast<TimePoint>(rng.Uniform(5));
    const int num_nodes = 8 + static_cast<int>(rng.Uniform(8));
    const int num_edges = 2 * num_nodes + static_cast<int>(rng.Uniform(10));
    const TemporalGraph g =
        RandomLabeledGraph(&rng, num_nodes, num_edges, horizon);
    const graph::InvertedIndex index(g);
    const SearchEngine engine(g, &index);

    const char* query_text =
        (round % 2 == 0) ? "alpha, beta" : "alpha, beta, gamma";
    auto query = ParseQuery(query_text);
    ASSERT_TRUE(query.ok()) << query.status();

    for (const bool parallel : {false, true}) {
      for (const bool pruned : {false, true}) {
        // Cell A: bounded top-k under the exact kAccurate bound, where
        // guided == unguided is a theorem. Cell B: exhaustive (k <= 0),
        // where the frontier drains fully regardless of ordering.
        struct Cell {
          int32_t k;
          UpperBoundKind bound;
          const char* name;
        };
        for (const Cell& cell :
             {Cell{5, UpperBoundKind::kAccurate, "top5-accurate"},
              Cell{0, UpperBoundKind::kEmpirical, "exhaustive"}}) {
          SearchOptions options;
          options.k = cell.k;
          options.bound = cell.bound;
          options.parallel_keywords = parallel;
          options.reachability_prune = pruned;

          options.guided_search = false;
          auto off = engine.Search(*query, options);
          ASSERT_TRUE(off.ok()) << off.status();

          options.guided_search = true;
          auto on = engine.Search(*query, options);
          ASSERT_TRUE(on.ok()) << on.status();

          std::ostringstream context;
          context << "guided search changed the results: seed " << GetParam()
                  << " round " << round << " query \"" << query_text
                  << "\" cell " << cell.name
                  << (parallel ? " parallel" : " sequential")
                  << (pruned ? " pruned" : " unpruned");
          if (cell.k <= 0) {
            // Exhaustive: the frontier drains fully, so the entire result
            // set must be bit-identical.
            EXPECT_EQ(Fingerprint(*off), Fingerprint(*on)) << context.str();
          } else {
            ExpectSameBoundedTopK(*off, *on, context.str());
          }
        }
      }
    }
  }
}

// 10 seeds x 6 rounds = 60 random graphs.
INSTANTIATE_TEST_SUITE_P(Seeds, GuidedDifferentialTest,
                         ::testing::Values(13, 29, 41, 57, 63, 78, 86, 92,
                                           104, 115));

}  // namespace
}  // namespace tgks::search
