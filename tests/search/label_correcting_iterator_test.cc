#include "search/label_correcting_iterator.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_builder.h"
#include "search/result_tree.h"
#include "testutil/paper_graphs.h"

namespace tgks::search {
namespace {

using graph::EdgeId;
using graph::GraphBuilder;
using graph::NodeId;
using graph::TemporalGraph;
using temporal::IntervalSet;
using temporal::TimePoint;

// ---------------------------------------------------------------------------
// Exact oracle: BFS closure over (node, time-set) states. A state (n, T)
// is reachable iff some backward walk from the source reaches n with
// surviving validity exactly T. Finite because time-sets over a small
// timeline are finite. Completely independent of any dominance rule.

std::map<NodeId, std::map<std::string, IntervalSet>> ReachableStates(
    const TemporalGraph& g, NodeId source) {
  std::map<NodeId, std::map<std::string, IntervalSet>> seen;
  std::deque<std::pair<NodeId, IntervalSet>> frontier;
  const IntervalSet initial = g.node(source).validity;
  if (initial.IsEmpty()) return seen;
  seen[source].emplace(initial.ToString(), initial);
  frontier.push_back({source, initial});
  while (!frontier.empty()) {
    auto [node, time] = frontier.front();
    frontier.pop_front();
    for (const EdgeId e : g.InEdges(node)) {
      const NodeId next = g.edge(e).src;
      IntervalSet narrowed = time.Intersect(g.edge(e).validity);
      if (narrowed.IsEmpty()) continue;
      if (seen[next].emplace(narrowed.ToString(), narrowed).second) {
        frontier.push_back({next, std::move(narrowed)});
      }
    }
  }
  return seen;
}

std::optional<int32_t> OracleBest(
    const std::map<NodeId, std::map<std::string, IntervalSet>>& states,
    NodeId node, TimePoint t, InverseRankFactor factor) {
  const auto it = states.find(node);
  if (it == states.end()) return std::nullopt;
  std::optional<int32_t> best;
  for (const auto& [key, set] : it->second) {
    if (!set.Contains(t)) continue;
    const int32_t v = InverseValue(factor, set);
    if (!best.has_value() || v < *best) best = v;
  }
  return best;
}

TemporalGraph RandomGraph(Rng* rng, int num_nodes, int num_edges,
                          TimePoint horizon) {
  while (true) {
    GraphBuilder b(horizon, graph::ValidityPolicy::kClamp);
    for (int i = 0; i < num_nodes; ++i) {
      const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
      const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
      b.AddNode("n" + std::to_string(i),
                IntervalSet{{std::min(a, c), std::max(a, c)}});
    }
    for (int i = 0; i < num_edges; ++i) {
      const NodeId u = static_cast<NodeId>(rng->Uniform(num_nodes));
      const NodeId v = static_cast<NodeId>(rng->Uniform(num_nodes));
      if (u == v) continue;
      const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
      const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
      b.AddEdge(u, v, IntervalSet{{std::min(a, c), std::max(a, c)}});
    }
    auto g = b.Build();
    if (g.ok()) return std::move(g).value();
  }
}

class LabelCorrectingOracleTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, InverseRankFactor>> {
};

TEST_P(LabelCorrectingOracleTest, MatchesStateSpaceOracle) {
  const auto [seed, factor] = GetParam();
  Rng rng(seed);
  for (int round = 0; round < 6; ++round) {
    const TimePoint horizon = 3 + static_cast<TimePoint>(rng.Uniform(4));
    const TemporalGraph g =
        RandomGraph(&rng, 6, 12 + static_cast<int>(rng.Uniform(6)), horizon);
    for (NodeId source = 0; source < g.num_nodes(); ++source) {
      const auto oracle = ReachableStates(g, source);
      LabelCorrectingIterator::Options options;
      options.factor = factor;
      LabelCorrectingIterator iter(g, source, options);
      EXPECT_TRUE(iter.Run());
      for (NodeId n = 0; n < g.num_nodes(); ++n) {
        for (TimePoint t = 0; t < horizon; ++t) {
          EXPECT_EQ(iter.BestAt(n, t), OracleBest(oracle, n, t, factor))
              << "node " << n << " t " << t << " source " << source
              << " seed " << seed << " "
              << InverseRankFactorName(factor);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LabelCorrectingOracleTest,
    ::testing::Combine(::testing::Values(51, 52),
                       ::testing::Values(InverseRankFactor::kEndTimeAsc,
                                         InverseRankFactor::kStartTimeDesc,
                                         InverseRankFactor::kDurationAsc)),
    [](const auto& info) {
      std::string name =
          "Seed" + std::to_string(std::get<0>(info.param)) + "_" +
          std::string(InverseRankFactorName(std::get<1>(info.param)));
      std::erase_if(name, [](char c) {
        return !std::isalnum(static_cast<unsigned char>(c)) && c != '_';
      });
      return name;
    });

TEST(LabelCorrectingIteratorTest, WalkCanBeatSimplePathForShortestDuration) {
  // A loop lets the search shrink validity: the direct edge s<-a is valid
  // [0,9], but detouring a<-b<-a intersects down to [4,5] — the shortest
  // duration at node a for instants 4-5 uses the non-simple walk.
  GraphBuilder b(10);
  const NodeId s = b.AddNode("s", IntervalSet{{0, 9}});
  const NodeId a = b.AddNode("a", IntervalSet{{0, 9}});
  const NodeId c = b.AddNode("c", IntervalSet{{0, 9}});
  b.AddEdge(a, s, IntervalSet{{0, 9}});   // Backward step s -> a.
  b.AddEdge(c, a, IntervalSet{{4, 5}});   // a -> c (narrow).
  b.AddEdge(a, c, IntervalSet{{0, 9}});   // c -> a (back).
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  LabelCorrectingIterator::Options options;
  options.factor = InverseRankFactor::kDurationAsc;
  LabelCorrectingIterator iter(*g, s, options);
  ASSERT_TRUE(iter.Run());
  EXPECT_EQ(iter.BestAt(a, 4), std::optional<int32_t>(2));   // Via the loop.
  EXPECT_EQ(iter.BestAt(a, 0), std::optional<int32_t>(10));  // Direct only.
}

TEST(LabelCorrectingIteratorTest, MaxRelaxationsValve) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  LabelCorrectingIterator::Options options;
  options.factor = InverseRankFactor::kEndTimeAsc;
  options.max_relaxations = 1;
  LabelCorrectingIterator iter(g, ids.mary, options);
  EXPECT_FALSE(iter.Run());
  EXPECT_LE(iter.relaxations(), 1);
}

TEST(LabelCorrectingIteratorTest, PathEdgesWalkToSource) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  LabelCorrectingIterator::Options options;
  options.factor = InverseRankFactor::kEndTimeAsc;
  LabelCorrectingIterator iter(g, ids.john, options);
  ASSERT_TRUE(iter.Run());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (const NtdId id : iter.FragmentsAt(n)) {
      NodeId cur = n;
      IntervalSet along = g.node(n).validity;
      for (const EdgeId e : iter.PathEdges(id)) {
        EXPECT_EQ(g.edge(e).src, cur);
        along = along.Intersect(g.edge(e).validity);
        cur = g.edge(e).dst;
      }
      EXPECT_EQ(cur, ids.john);
      EXPECT_EQ(along, iter.FragmentTime(id));
    }
  }
}

// ---------------------------------------------------------------------------
// SearchInverse: tree-level checks.

TEST(SearchInverseTest, EarliestEndingConnectionFound) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  // Earliest-ending Mary-John connection: the Mike-Jim chain dies at t4,
  // well before the Ross chain (t7).
  const auto results = SearchInverse(
      g, {{ids.mary}, {ids.john}}, InverseRankFactor::kEndTimeAsc, 3);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].value, 4);
  EXPECT_TRUE(std::binary_search(results[0].nodes.begin(),
                                 results[0].nodes.end(), ids.mike));
}

TEST(SearchInverseTest, ShortestLivedConnection) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const auto results = SearchInverse(
      g, {{ids.mary}, {ids.john}}, InverseRankFactor::kDurationAsc, 1);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].value, 1);  // The t4-only Mike tree.
}

TEST(SearchInverseTest, ResultsAreValidSortedAndDeduplicated) {
  Rng rng(77);
  for (int round = 0; round < 5; ++round) {
    const TemporalGraph g = RandomGraph(&rng, 10, 24, 6);
    std::vector<NodeId> m0, m1;
    for (const uint64_t v : rng.SampleWithoutReplacement(
             static_cast<uint64_t>(g.num_nodes()), 3)) {
      m0.push_back(static_cast<NodeId>(v));
    }
    for (const uint64_t v : rng.SampleWithoutReplacement(
             static_cast<uint64_t>(g.num_nodes()), 3)) {
      m1.push_back(static_cast<NodeId>(v));
    }
    for (const auto factor :
         {InverseRankFactor::kEndTimeAsc, InverseRankFactor::kStartTimeDesc,
          InverseRankFactor::kDurationAsc}) {
      const auto results = SearchInverse(g, {m0, m1}, factor, 0);
      std::set<std::pair<NodeId, std::vector<EdgeId>>> seen;
      for (size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        ASSERT_FALSE(r.time.IsEmpty());
        // Exact validity.
        IntervalSet time = g.node(r.root).validity;
        for (const NodeId n : r.nodes) time = time.Intersect(g.node(n).validity);
        for (const EdgeId e : r.edges) time = time.Intersect(g.edge(e).validity);
        EXPECT_EQ(time, r.time);
        EXPECT_EQ(r.value, InverseValue(factor, r.time));
        EXPECT_EQ(r.edges.size() + 1, r.nodes.size());
        if (i > 0) EXPECT_LE(results[i - 1].value, r.value);
        EXPECT_TRUE(seen.insert({r.root, r.edges}).second);
      }
    }
  }
}

TEST(SearchInverseTest, TopKTruncates) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const auto all = SearchInverse(g, {{ids.mary}, {ids.john}},
                                 InverseRankFactor::kEndTimeAsc, 0);
  const auto top = SearchInverse(g, {{ids.mary}, {ids.john}},
                                 InverseRankFactor::kEndTimeAsc, 1);
  ASSERT_GE(all.size(), top.size());
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].value, all[0].value);
}

}  // namespace
}  // namespace tgks::search
