// Differential suite for the opt-in parallel keyword mode
// (SearchOptions::parallel_keywords) plus the amortized deadline poll.
//
// The parallel mode's contract is exact result equivalence: per-keyword
// prefetch tasks record pop streams and the coordinator replays the
// sequential interleaving over them, so result sets, scores, stop reasons,
// and the consumed-pop count must be IDENTICAL to sequential mode — for
// every ranking, bound kind, and safety valve. The suite checks that on the
// same 60 seeded random graphs the snapshot-reducibility oracle uses
// (10 seeds x 6 rounds), sweeping ranking x bound across rounds, with the
// prefetch tasks running on a real ThreadPool.
//
// Also pinned here:
//   - parallel_deterministic: ALL work counters (including the
//     overshoot-bearing iterator-level ones) reproduce run-to-run;
//   - a null task_submitter degrades to inline prefetch, same results;
//   - the deadline poll runs every kDeadlineCheckStridePops pops, not every
//     pop (regression: the main loop used to call steady_clock::now() per
//     pop), with the documented worst-case overshoot bound.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/thread_pool.h"
#include "graph/graph_builder.h"
#include "search/search_engine.h"

namespace tgks::search {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TemporalGraph;
using temporal::IntervalSet;
using temporal::TimePoint;

TemporalGraph RandomGraph(Rng* rng, int num_nodes, int num_edges,
                          TimePoint horizon) {
  while (true) {
    GraphBuilder b(horizon, graph::ValidityPolicy::kClamp);
    std::vector<std::pair<TimePoint, TimePoint>> node_span;
    for (int i = 0; i < num_nodes; ++i) {
      const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
      const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
      node_span.emplace_back(std::min(a, c), std::max(a, c));
      b.AddNode("n" + std::to_string(i),
                IntervalSet{{node_span.back().first, node_span.back().second}},
                static_cast<double>(rng->Uniform(3)));
    }
    for (int i = 0; i < num_edges; ++i) {
      const NodeId u = static_cast<NodeId>(rng->Uniform(num_nodes));
      const NodeId v = static_cast<NodeId>(rng->Uniform(num_nodes));
      if (u == v) continue;
      const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
      const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
      // kClamp rejects the whole build when an edge's validity clamped to
      // its endpoints' comes out empty; skip such edges so dense graphs
      // (many edge draws) stay constructible.
      const TimePoint lo = std::max({std::min(a, c), node_span[u].first,
                                     node_span[v].first});
      const TimePoint hi = std::min({std::max(a, c), node_span[u].second,
                                     node_span[v].second});
      if (lo > hi) continue;
      b.AddEdge(u, v, IntervalSet{{std::min(a, c), std::max(a, c)}},
                static_cast<double>(1 + rng->Uniform(3)));
    }
    auto g = b.Build();
    if (g.ok()) return std::move(g).value();
  }
}

std::vector<NodeId> RandomMatches(Rng* rng, const TemporalGraph& g, int k) {
  std::vector<NodeId> out;
  for (const uint64_t v : rng->SampleWithoutReplacement(
           static_cast<uint64_t>(g.num_nodes()), static_cast<uint64_t>(k))) {
    out.push_back(static_cast<NodeId>(v));
  }
  return out;
}

/// The parts of a response the parallel mode must reproduce exactly.
void ExpectSameOutcome(const SearchResponse& seq, const SearchResponse& par,
                       const std::string& context) {
  EXPECT_EQ(seq.stop_reason, par.stop_reason) << context;
  EXPECT_EQ(seq.exhausted, par.exhausted) << context;
  EXPECT_EQ(seq.truncated, par.truncated) << context;
  EXPECT_EQ(seq.deadline_exceeded, par.deadline_exceeded) << context;
  EXPECT_EQ(seq.cancelled, par.cancelled) << context;
  // The replay consumes the exact sequential pop sequence, so the
  // consumed-side counters match too (iterator-level counters may not:
  // they include prefetch overshoot).
  EXPECT_EQ(seq.counters.pops, par.counters.pops) << context;
  EXPECT_EQ(seq.counters.candidates, par.counters.candidates) << context;
  EXPECT_EQ(seq.counters.results, par.counters.results) << context;
  ASSERT_EQ(seq.results.size(), par.results.size()) << context;
  for (size_t i = 0; i < seq.results.size(); ++i) {
    EXPECT_EQ(seq.results[i].score, par.results[i].score)
        << context << " result " << i;
    EXPECT_EQ(seq.results[i].Signature(), par.results[i].Signature())
        << context << " result " << i;
  }
}

struct ModeRunner {
  exec::ThreadPool pool{4};
  TaskSubmitFn submit = [this](std::function<void()> task) {
    pool.Submit(std::move(task));
  };

  SearchOptions Parallel(const SearchOptions& base) {
    SearchOptions options = base;
    options.parallel_keywords = true;
    options.task_submitter = &submit;
    return options;
  }
};

class ParallelDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

// The tentpole soundness gate: on 60 random graphs (same seed protocol as
// snapshot_reducibility_test: 10 seeds x 6 rounds), sequential and parallel
// runs must agree exactly. Rounds cycle through ranking factors and bound
// kinds so every (factor, bound) pair is exercised across the suite.
TEST_P(ParallelDifferentialTest, ParallelMatchesSequentialExactly) {
  static constexpr RankFactor kFactors[] = {
      RankFactor::kRelevance, RankFactor::kEndTimeDesc,
      RankFactor::kStartTimeAsc, RankFactor::kDurationDesc};
  static constexpr UpperBoundKind kBounds[] = {UpperBoundKind::kEmpirical,
                                               UpperBoundKind::kAccurate,
                                               UpperBoundKind::kAverage};
  ModeRunner runner;
  Rng rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    const TemporalGraph g = RandomGraph(&rng, 12, 26, 8);
    const int num_keywords = 2 + static_cast<int>(rng.Uniform(2));
    std::vector<std::vector<NodeId>> matches;
    Query q;
    for (int kw = 0; kw < num_keywords; ++kw) {
      q.keywords.push_back(std::string(1, static_cast<char>('a' + kw)));
      matches.push_back(RandomMatches(&rng, g, 3));
    }
    q.ranking.factors = {kFactors[round % 4]};
    const SearchEngine engine(g);

    SearchOptions base;
    base.k = 5;
    base.bound = kBounds[round % 3];
    const std::string context = "seed " + std::to_string(GetParam()) +
                                " round " + std::to_string(round);

    auto seq = engine.SearchWithMatches(q, matches, base);
    auto par = engine.SearchWithMatches(q, matches, runner.Parallel(base));
    ASSERT_TRUE(seq.ok()) << context;
    ASSERT_TRUE(par.ok()) << context;
    ExpectSameOutcome(*seq, *par, context);

    // Exhaustive runs (k = 0) must agree too — the bound never fires, so
    // this pins the exhaustion stop path.
    SearchOptions all = base;
    all.k = 0;
    auto seq_all = engine.SearchWithMatches(q, matches, all);
    auto par_all = engine.SearchWithMatches(q, matches, runner.Parallel(all));
    ASSERT_TRUE(seq_all.ok()) << context;
    ASSERT_TRUE(par_all.ok()) << context;
    ExpectSameOutcome(*seq_all, *par_all, context + " exhaustive");
  }
}

// 10 seeds x 6 rounds = 60 random graphs, mirroring the
// snapshot-reducibility suite's protocol.
INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDifferentialTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99,
                                           110));

// max_pops must truncate at the same consumed pop in both modes: prefetch
// overshoot is never allowed to leak into the response.
TEST(ParallelSafetyValveTest, MaxPopsTruncatesIdentically) {
  ModeRunner runner;
  Rng rng(321);
  const TemporalGraph g = RandomGraph(&rng, 14, 30, 8);
  const std::vector<std::vector<NodeId>> matches = {RandomMatches(&rng, g, 3),
                                                    RandomMatches(&rng, g, 3)};
  Query q;
  q.keywords = {"a", "b"};
  const SearchEngine engine(g);
  for (const int64_t max_pops : {1, 7, 50}) {
    SearchOptions base;
    base.k = 0;
    base.max_pops = max_pops;
    auto seq = engine.SearchWithMatches(q, matches, base);
    auto par = engine.SearchWithMatches(q, matches, runner.Parallel(base));
    ASSERT_TRUE(seq.ok());
    ASSERT_TRUE(par.ok());
    ExpectSameOutcome(*seq, *par, "max_pops " + std::to_string(max_pops));
    EXPECT_LE(par->counters.pops, max_pops);
  }
}

// A pre-set cancellation token stops both modes before any pop.
TEST(ParallelSafetyValveTest, PreCancelledTokenStopsBothModes) {
  ModeRunner runner;
  Rng rng(77);
  const TemporalGraph g = RandomGraph(&rng, 12, 26, 8);
  const std::vector<std::vector<NodeId>> matches = {RandomMatches(&rng, g, 3),
                                                    RandomMatches(&rng, g, 3)};
  Query q;
  q.keywords = {"a", "b"};
  const SearchEngine engine(g);
  std::atomic<bool> cancel{true};
  SearchOptions base;
  base.cancel = &cancel;
  auto seq = engine.SearchWithMatches(q, matches, base);
  auto par = engine.SearchWithMatches(q, matches, runner.Parallel(base));
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_TRUE(seq->cancelled);
  EXPECT_TRUE(par->cancelled);
  EXPECT_EQ(seq->stop_reason, StopReason::kCancelled);
  EXPECT_EQ(par->stop_reason, StopReason::kCancelled);
}

// Null task_submitter: prefetch runs inline on the calling thread, through
// the same record-and-replay merge path, and must still match sequential.
TEST(ParallelInlineTest, NullSubmitterMatchesSequential)  {
  Rng rng(909);
  for (int round = 0; round < 4; ++round) {
    const TemporalGraph g = RandomGraph(&rng, 12, 26, 8);
    const std::vector<std::vector<NodeId>> matches = {
        RandomMatches(&rng, g, 3), RandomMatches(&rng, g, 3)};
    Query q;
    q.keywords = {"a", "b"};
    const SearchEngine engine(g);
    SearchOptions base;
    base.k = 4;
    SearchOptions par_opts = base;
    par_opts.parallel_keywords = true;  // task_submitter stays null.
    auto seq = engine.SearchWithMatches(q, matches, base);
    auto par = engine.SearchWithMatches(q, matches, par_opts);
    ASSERT_TRUE(seq.ok());
    ASSERT_TRUE(par.ok());
    ExpectSameOutcome(*seq, *par, "inline round " + std::to_string(round));
  }
}

// Single-keyword queries fall back to the sequential path entirely (no
// rounds, no overshoot).
TEST(ParallelInlineTest, SingleKeywordFallsBackToSequential) {
  ModeRunner runner;
  Rng rng(55);
  const TemporalGraph g = RandomGraph(&rng, 12, 26, 8);
  const std::vector<std::vector<NodeId>> matches = {RandomMatches(&rng, g, 3)};
  Query q;
  q.keywords = {"a"};
  const SearchEngine engine(g);
  SearchOptions base;
  base.k = 0;
  auto par = engine.SearchWithMatches(q, matches, runner.Parallel(base));
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(par->counters.parallel_rounds, 0);
  EXPECT_EQ(par->counters.parallel_overshoot_pops, 0);
}

// parallel_deterministic pins the round budget, so EVERY counter — the
// consumed-side ones and the overshoot-bearing iterator-level ones — must
// reproduce across runs on the same pool.
TEST(ParallelDeterministicTest, AllCountersReproduceRunToRun) {
  ModeRunner runner;
  Rng rng(1234);
  const TemporalGraph g = RandomGraph(&rng, 16, 40, 8);
  const std::vector<std::vector<NodeId>> matches = {RandomMatches(&rng, g, 4),
                                                    RandomMatches(&rng, g, 4),
                                                    RandomMatches(&rng, g, 3)};
  Query q;
  q.keywords = {"a", "b", "c"};
  const SearchEngine engine(g);
  SearchOptions base;
  base.k = 5;
  SearchOptions det = runner.Parallel(base);
  det.parallel_deterministic = true;
  det.parallel_round_budget = 16;  // Small budget forces several rounds.

  auto first = engine.SearchWithMatches(q, matches, det);
  ASSERT_TRUE(first.ok());
  for (int run = 0; run < 3; ++run) {
    auto again = engine.SearchWithMatches(q, matches, det);
    ASSERT_TRUE(again.ok());
    const SearchCounters& a = first->counters;
    const SearchCounters& b = again->counters;
    EXPECT_EQ(a.iterators, b.iterators);
    EXPECT_EQ(a.pops, b.pops);
    EXPECT_EQ(a.useless_pops, b.useless_pops);
    EXPECT_EQ(a.ntds_created, b.ntds_created);
    EXPECT_EQ(a.edges_scanned, b.edges_scanned);
    EXPECT_EQ(a.subsumption_skips, b.subsumption_skips);
    EXPECT_EQ(a.subsumption_evictions, b.subsumption_evictions);
    EXPECT_EQ(a.nodes_visited, b.nodes_visited);
    EXPECT_EQ(a.candidates, b.candidates);
    EXPECT_EQ(a.results, b.results);
    EXPECT_EQ(a.parallel_rounds, b.parallel_rounds);
    EXPECT_EQ(a.parallel_overshoot_pops, b.parallel_overshoot_pops);
    ExpectSameOutcome(*first, *again, "run " + std::to_string(run));
  }
}

// ---------------------------------------------------------------------------
// Deadline poll amortization (bugfix: per-pop steady_clock::now()).

/// Injectable clock: counts calls; returns base until `expire_after_calls`
/// calls have happened, then a far-future instant. Thread-safe (the
/// parallel prefetch tasks poll it concurrently).
struct FakeClock {
  std::chrono::steady_clock::time_point base =
      std::chrono::steady_clock::time_point(std::chrono::seconds(1000));
  std::atomic<int64_t> calls{0};
  int64_t expire_after_calls = -1;  // -1 = never expire.

  static std::chrono::steady_clock::time_point Read(void* ctx) {
    auto* clock = static_cast<FakeClock*>(ctx);
    const int64_t n = clock->calls.fetch_add(1, std::memory_order_relaxed) + 1;
    if (clock->expire_after_calls >= 0 && n > clock->expire_after_calls) {
      return clock->base + std::chrono::hours(24);
    }
    return clock->base;
  }
};

// Regression for the per-pop clock poll: the main loop must read the clock
// once per kDeadlineCheckStridePops pops, not once per pop. Pre-fix this
// fails with calls ~= pops.
TEST(DeadlineStrideTest, ClockPolledOncePerStride) {
  Rng rng(2468);
  const TemporalGraph g = RandomGraph(&rng, 16, 40, 8);
  const std::vector<std::vector<NodeId>> matches = {RandomMatches(&rng, g, 4),
                                                    RandomMatches(&rng, g, 4)};
  Query q;
  q.keywords = {"a", "b"};
  const SearchEngine engine(g);
  FakeClock clock;  // Never expires: the search runs to its natural stop.
  SearchOptions options;
  options.k = 0;
  options.deadline_ms = 60'000;
  options.clock_fn = &FakeClock::Read;
  options.clock_ctx = &clock;
  auto r = engine.SearchWithMatches(q, matches, options);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->deadline_exceeded);
  ASSERT_GT(r->counters.pops, 0);
  // One read arms the deadline; the loop then reads every stride pops
  // (+1 slack for the first-iteration poll).
  const int64_t max_reads =
      r->counters.pops / kDeadlineCheckStridePops + 3;
  EXPECT_LE(clock.calls.load(), max_reads)
      << "deadline clock polled per pop (" << clock.calls.load()
      << " reads for " << r->counters.pops << " pops)";
}

// The documented worst case: once the deadline passes, the loop overshoots
// by at most kDeadlineCheckStridePops - 1 pops before the next poll fires.
TEST(DeadlineStrideTest, OvershootBoundedByStride) {
  Rng rng(1357);
  const TemporalGraph g = RandomGraph(&rng, 20, 60, 8);
  const std::vector<std::vector<NodeId>> matches = {RandomMatches(&rng, g, 5),
                                                    RandomMatches(&rng, g, 5)};
  Query q;
  q.keywords = {"a", "b"};
  const SearchEngine engine(g);
  FakeClock clock;
  // Read 1 arms the deadline; read 2 (first in-loop poll) still passes; the
  // clock is expired from read 3 on, so the loop may consume at most one
  // full stride of pops after the first poll before stopping.
  clock.expire_after_calls = 2;
  SearchOptions options;
  options.k = 0;
  options.deadline_ms = 1000;
  options.clock_fn = &FakeClock::Read;
  options.clock_ctx = &clock;
  auto r = engine.SearchWithMatches(q, matches, options);
  ASSERT_TRUE(r.ok());
  if (r->stop_reason == StopReason::kExhausted) {
    GTEST_SKIP() << "graph exhausted before the deadline could fire";
  }
  EXPECT_EQ(r->stop_reason, StopReason::kDeadline);
  EXPECT_TRUE(r->deadline_exceeded);
  EXPECT_TRUE(r->truncated);
  // First poll fires at pop 1; the expired poll at pop 1 + stride.
  EXPECT_LE(r->counters.pops, 1 + kDeadlineCheckStridePops);
}

// Deadline expiry inside parallel prefetch tasks surfaces as a clean
// kDeadline stop (the abort is mapped through the same stop protocol).
TEST(DeadlineStrideTest, ParallelModeHonorsExpiredClock) {
  ModeRunner runner;
  Rng rng(8642);
  const TemporalGraph g = RandomGraph(&rng, 20, 60, 8);
  const std::vector<std::vector<NodeId>> matches = {RandomMatches(&rng, g, 5),
                                                    RandomMatches(&rng, g, 5)};
  Query q;
  q.keywords = {"a", "b"};
  const SearchEngine engine(g);
  FakeClock clock;
  clock.expire_after_calls = 3;
  SearchOptions options = runner.Parallel({});
  options.k = 0;
  options.deadline_ms = 1000;
  options.clock_fn = &FakeClock::Read;
  options.clock_ctx = &clock;
  auto r = engine.SearchWithMatches(q, matches, options);
  ASSERT_TRUE(r.ok());
  if (r->stop_reason == StopReason::kExhausted) {
    GTEST_SKIP() << "graph exhausted before the deadline could fire";
  }
  EXPECT_EQ(r->stop_reason, StopReason::kDeadline);
  EXPECT_TRUE(r->deadline_exceeded);
  // Results are still sorted and well-formed on the truncation path.
  for (size_t i = 1; i < r->results.size(); ++i) {
    EXPECT_FALSE(ScoreBetter(r->results[i].score, r->results[i - 1].score));
  }
}

}  // namespace
}  // namespace tgks::search
