#include "search/predicate.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace tgks::search {
namespace {

using temporal::IntervalSet;

TEST(PredicateTest, PrecedesRequiresInstantStrictlyBefore) {
  const auto p = PredicateExpr::Atom(PredicateOp::kPrecedes, 5);
  EXPECT_TRUE(p->EvalResultTime(IntervalSet{{0, 3}}));
  EXPECT_TRUE(p->EvalResultTime(IntervalSet{{4, 9}}));  // Starts before 5.
  EXPECT_FALSE(p->EvalResultTime(IntervalSet{{5, 9}}));
  EXPECT_FALSE(p->EvalResultTime(IntervalSet{{6, 9}}));
}

TEST(PredicateTest, FollowsRequiresInstantStrictlyAfter) {
  const auto p = PredicateExpr::Atom(PredicateOp::kFollows, 5);
  EXPECT_TRUE(p->EvalResultTime(IntervalSet{{6, 9}}));
  EXPECT_TRUE(p->EvalResultTime(IntervalSet{{0, 6}}));
  EXPECT_FALSE(p->EvalResultTime(IntervalSet{{0, 5}}));
}

TEST(PredicateTest, MeetsRequiresBoundaryInstant) {
  const auto p = PredicateExpr::Atom(PredicateOp::kMeets, 5);
  EXPECT_TRUE(p->EvalResultTime(IntervalSet{{5, 9}}));   // Starts at 5.
  EXPECT_TRUE(p->EvalResultTime(IntervalSet{{0, 5}}));   // Ends at 5.
  EXPECT_TRUE(p->EvalResultTime(IntervalSet{{5, 5}}));   // Both.
  EXPECT_FALSE(p->EvalResultTime(IntervalSet{{0, 9}}));  // Interior.
  EXPECT_FALSE(p->EvalResultTime(IntervalSet{{6, 9}}));  // Not valid at 5.
  // Gappy set: 5 is the start of a sub-interval but not of the result time.
  EXPECT_FALSE(p->EvalResultTime(IntervalSet{{0, 2}, {5, 9}}));
}

TEST(PredicateTest, PaperExample51MeetsHoldsOnResultNotElements) {
  // val(n) = {1,3,5,7}, val(n') = {2,4,5,7}, result time = {5,7}: the result
  // meets 5 although neither element does.
  const IntervalSet val_n{{1, 1}, {3, 3}, {5, 5}, {7, 7}};
  const IntervalSet val_n2{{2, 2}, {4, 4}, {5, 5}, {7, 7}};
  const IntervalSet result{{5, 5}, {7, 7}};
  const auto meets5 = PredicateExpr::Atom(PredicateOp::kMeets, 5);
  EXPECT_TRUE(meets5->EvalResultTime(result));
  EXPECT_FALSE(meets5->EvalResultTime(val_n));
  EXPECT_FALSE(meets5->EvalResultTime(val_n2));
  // The element-level test is only a necessary condition: both elements
  // contain instant 5, so both may participate.
  EXPECT_TRUE(meets5->ElementMayQualify(val_n));
  EXPECT_TRUE(meets5->ElementMayQualify(val_n2));
}

TEST(PredicateTest, OverlapsAndContainsAndContainedBy) {
  const auto overlaps = PredicateExpr::Atom(PredicateOp::kOverlaps, 3, 6);
  EXPECT_TRUE(overlaps->EvalResultTime(IntervalSet{{6, 9}}));
  EXPECT_FALSE(overlaps->EvalResultTime(IntervalSet{{7, 9}}));

  const auto contains = PredicateExpr::Atom(PredicateOp::kContains, 3, 6);
  EXPECT_TRUE(contains->EvalResultTime(IntervalSet{{0, 9}}));
  EXPECT_TRUE(contains->EvalResultTime(IntervalSet{{3, 6}}));
  EXPECT_FALSE(contains->EvalResultTime(IntervalSet{{3, 5}}));
  EXPECT_FALSE(contains->EvalResultTime(IntervalSet{{0, 4}, {6, 9}}));

  const auto within = PredicateExpr::Atom(PredicateOp::kContainedBy, 3, 6);
  EXPECT_TRUE(within->EvalResultTime(IntervalSet{{3, 6}}));
  EXPECT_TRUE(within->EvalResultTime(IntervalSet{{4, 4}, {6, 6}}));
  EXPECT_FALSE(within->EvalResultTime(IntervalSet{{2, 6}}));
}

TEST(PredicateTest, CombinatorsEvaluate) {
  const auto p = PredicateExpr::And(
      {PredicateExpr::Atom(PredicateOp::kPrecedes, 5),
       PredicateExpr::Not(PredicateExpr::Atom(PredicateOp::kFollows, 5))});
  // Fig. 3 row 1: entirely before 5.
  EXPECT_TRUE(p->EvalResultTime(IntervalSet{{0, 4}}));
  EXPECT_FALSE(p->EvalResultTime(IntervalSet{{0, 6}}));
  EXPECT_FALSE(p->EvalResultTime(IntervalSet{{5, 6}}));

  const auto q = PredicateExpr::Or(
      {PredicateExpr::Atom(PredicateOp::kContains, 0, 1),
       PredicateExpr::Atom(PredicateOp::kContains, 8, 9)});
  EXPECT_TRUE(q->EvalResultTime(IntervalSet{{0, 1}}));
  EXPECT_TRUE(q->EvalResultTime(IntervalSet{{7, 9}}));
  EXPECT_FALSE(q->EvalResultTime(IntervalSet{{3, 5}}));
}

TEST(PredicateTest, ElementPruningNecessaryConditions) {
  const auto precedes = PredicateExpr::Atom(PredicateOp::kPrecedes, 5);
  EXPECT_TRUE(precedes->ElementMayQualify(IntervalSet{{0, 9}}));
  EXPECT_FALSE(precedes->ElementMayQualify(IntervalSet{{5, 9}}));

  const auto follows = PredicateExpr::Atom(PredicateOp::kFollows, 5);
  EXPECT_TRUE(follows->ElementMayQualify(IntervalSet{{0, 6}}));
  EXPECT_FALSE(follows->ElementMayQualify(IntervalSet{{0, 5}}));

  const auto meets = PredicateExpr::Atom(PredicateOp::kMeets, 5);
  EXPECT_TRUE(meets->ElementMayQualify(IntervalSet{{0, 9}}));
  EXPECT_FALSE(meets->ElementMayQualify(IntervalSet{{6, 9}}));

  const auto overlaps = PredicateExpr::Atom(PredicateOp::kOverlaps, 3, 6);
  EXPECT_TRUE(overlaps->ElementMayQualify(IntervalSet{{6, 9}}));
  EXPECT_FALSE(overlaps->ElementMayQualify(IntervalSet{{7, 9}}));

  const auto contains = PredicateExpr::Atom(PredicateOp::kContains, 3, 6);
  EXPECT_TRUE(contains->ElementMayQualify(IntervalSet{{0, 9}}));
  EXPECT_FALSE(contains->ElementMayQualify(IntervalSet{{3, 5}}));
}

TEST(PredicateTest, ContainedByPrunesOnlyWithExtension) {
  const auto within = PredicateExpr::Atom(PredicateOp::kContainedBy, 3, 6);
  // Paper-faithful default: no pruning at all.
  EXPECT_TRUE(within->ElementMayQualify(IntervalSet{{8, 9}}));
  // Extension: elements disjoint from the window cannot participate.
  EXPECT_FALSE(
      within->ElementMayQualify(IntervalSet{{8, 9}}, /*containedby_prune=*/true));
  EXPECT_TRUE(
      within->ElementMayQualify(IntervalSet{{5, 9}}, /*containedby_prune=*/true));
}

TEST(PredicateTest, NotIsConservativeForPruning) {
  const auto p =
      PredicateExpr::Not(PredicateExpr::Atom(PredicateOp::kPrecedes, 5));
  EXPECT_TRUE(p->ElementMayQualify(IntervalSet{{0, 0}}));
  EXPECT_TRUE(p->ElementMayQualify(IntervalSet{{9, 9}}));
}

TEST(PredicateTest, OrPruningRequiresSomeBranch) {
  const auto p =
      PredicateExpr::Or({PredicateExpr::Atom(PredicateOp::kContains, 0, 1),
                         PredicateExpr::Atom(PredicateOp::kContains, 8, 9)});
  EXPECT_TRUE(p->ElementMayQualify(IntervalSet{{0, 3}}));
  EXPECT_TRUE(p->ElementMayQualify(IntervalSet{{7, 9}}));
  EXPECT_FALSE(p->ElementMayQualify(IntervalSet{{3, 5}}));
}

TEST(PredicateTest, PruningIsExactOnlyForContainsConjunctions) {
  EXPECT_TRUE(PredicateExpr::Atom(PredicateOp::kContains, 1, 2)->PruningIsExact());
  EXPECT_TRUE(PredicateExpr::And({PredicateExpr::Atom(PredicateOp::kContains, 1, 2),
                                  PredicateExpr::Atom(PredicateOp::kContains, 4, 5)})
                  ->PruningIsExact());
  EXPECT_FALSE(PredicateExpr::Atom(PredicateOp::kPrecedes, 5)->PruningIsExact());
  EXPECT_FALSE(PredicateExpr::Atom(PredicateOp::kMeets, 5)->PruningIsExact());
  EXPECT_FALSE(
      PredicateExpr::Or({PredicateExpr::Atom(PredicateOp::kContains, 1, 2)})
          ->PruningIsExact());
  EXPECT_FALSE(
      PredicateExpr::Not(PredicateExpr::Atom(PredicateOp::kContains, 1, 2))
          ->PruningIsExact());
}

TEST(SnapshotFilterTest, AtomsClipCorrectly) {
  constexpr temporal::TimePoint kHorizon = 10;
  EXPECT_EQ(PredicateExpr::Atom(PredicateOp::kPrecedes, 4)
                ->SnapshotTraversalFilter(kHorizon),
            (IntervalSet{{0, 3}}));
  EXPECT_EQ(PredicateExpr::Atom(PredicateOp::kFollows, 4)
                ->SnapshotTraversalFilter(kHorizon),
            (IntervalSet{{5, 9}}));
  EXPECT_EQ(PredicateExpr::Atom(PredicateOp::kOverlaps, 2, 5)
                ->SnapshotTraversalFilter(kHorizon),
            (IntervalSet{{2, 5}}));
  EXPECT_EQ(PredicateExpr::Atom(PredicateOp::kContains, 2, 5)
                ->SnapshotTraversalFilter(kHorizon),
            (IntervalSet{{2, 5}}));
  // No per-instant necessary condition: traverse everything.
  EXPECT_EQ(PredicateExpr::Atom(PredicateOp::kMeets, 4)
                ->SnapshotTraversalFilter(kHorizon),
            IntervalSet::All(kHorizon));
  EXPECT_EQ(PredicateExpr::Atom(PredicateOp::kContainedBy, 2, 5)
                ->SnapshotTraversalFilter(kHorizon),
            IntervalSet::All(kHorizon));
}

TEST(SnapshotFilterTest, BoundaryClipsToEmpty) {
  constexpr temporal::TimePoint kHorizon = 10;
  EXPECT_TRUE(PredicateExpr::Atom(PredicateOp::kPrecedes, 0)
                  ->SnapshotTraversalFilter(kHorizon)
                  .IsEmpty());
  EXPECT_TRUE(PredicateExpr::Atom(PredicateOp::kFollows, 9)
                  ->SnapshotTraversalFilter(kHorizon)
                  .IsEmpty());
}

TEST(SnapshotFilterTest, AndPicksCheapestConjunct) {
  constexpr temporal::TimePoint kHorizon = 10;
  // A qualifying result satisfies every conjunct, so the cheapest
  // conjunct's filter alone is sound.
  const auto p = PredicateExpr::And(
      {PredicateExpr::Atom(PredicateOp::kPrecedes, 8),    // [0,7]: 8 instants.
       PredicateExpr::Atom(PredicateOp::kContains, 3, 4)});  // [3,4]: 2.
  EXPECT_EQ(p->SnapshotTraversalFilter(kHorizon), (IntervalSet{{3, 4}}));
}

TEST(SnapshotFilterTest, OrUnionsAndNotIsConservative) {
  constexpr temporal::TimePoint kHorizon = 10;
  const auto p =
      PredicateExpr::Or({PredicateExpr::Atom(PredicateOp::kPrecedes, 2),
                         PredicateExpr::Atom(PredicateOp::kFollows, 7)});
  EXPECT_EQ(p->SnapshotTraversalFilter(kHorizon),
            (IntervalSet{{0, 1}, {8, 9}}));
  EXPECT_EQ(PredicateExpr::Not(PredicateExpr::Atom(PredicateOp::kPrecedes, 2))
                ->SnapshotTraversalFilter(kHorizon),
            IntervalSet::All(kHorizon));
}

TEST(SnapshotFilterTest, SoundnessOnRandomResults) {
  // Any result time satisfying the predicate must intersect the filter.
  constexpr temporal::TimePoint kHorizon = 12;
  Rng rng(99);
  std::vector<std::shared_ptr<const PredicateExpr>> predicates = {
      PredicateExpr::Atom(PredicateOp::kPrecedes, 5),
      PredicateExpr::Atom(PredicateOp::kMeets, 6),
      PredicateExpr::Atom(PredicateOp::kContains, 3, 5),
      PredicateExpr::Atom(PredicateOp::kContainedBy, 2, 9),
      PredicateExpr::And({PredicateExpr::Atom(PredicateOp::kFollows, 2),
                          PredicateExpr::Atom(PredicateOp::kOverlaps, 4, 6)}),
      PredicateExpr::Or({PredicateExpr::Atom(PredicateOp::kContains, 1, 2),
                         PredicateExpr::Atom(PredicateOp::kContains, 8, 9)}),
      PredicateExpr::Not(PredicateExpr::Atom(PredicateOp::kFollows, 6)),
  };
  for (const auto& p : predicates) {
    const IntervalSet filter = p->SnapshotTraversalFilter(kHorizon);
    for (int iter = 0; iter < 300; ++iter) {
      const temporal::TimePoint a =
          static_cast<temporal::TimePoint>(rng.Uniform(kHorizon));
      const temporal::TimePoint b =
          static_cast<temporal::TimePoint>(rng.Uniform(kHorizon));
      const IntervalSet result{{std::min(a, b), std::max(a, b)}};
      if (p->EvalResultTime(result)) {
        EXPECT_TRUE(result.Overlaps(filter)) << p->ToString() << " vs "
                                             << result.ToString();
      }
    }
  }
}

TEST(PredicateTest, ToStringRendersSyntax) {
  const auto p = PredicateExpr::And(
      {PredicateExpr::Atom(PredicateOp::kPrecedes, 5),
       PredicateExpr::Not(PredicateExpr::Atom(PredicateOp::kOverlaps, 2, 4))});
  EXPECT_EQ(p->ToString(),
            "(result time precedes 5 and not result time overlaps [2,4])");
  EXPECT_EQ(PredicateExpr::Atom(PredicateOp::kContainedBy, 1, 3)->ToString(),
            "result time contained by [1,3]");
}

}  // namespace
}  // namespace tgks::search
