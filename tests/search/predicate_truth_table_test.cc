// Exhaustive truth tables for the six temporal predicates (Definition 2.1)
// and their AND / OR / NOT compositions.
//
// The timeline is kept small enough (6 instants) to enumerate EVERY
// non-empty result time as a bitmask and every sensible atom parameter, so
// each semantic rule is checked against a first-principles model rather
// than sampled:
//
//   PRECEDES t       — some instant of val(R) is < t
//   FOLLOWS t        — some instant of val(R) is > t
//   MEETS t          — t ∈ val(R) and t is val(R)'s start or end
//   OVERLAPS [a,b]   — val(R) ∩ [a,b] ≠ ∅
//   CONTAINS [a,b]   — val(R) ⊇ [a,b]
//   CONTAINED BY [a,b] — val(R) ⊆ [a,b]
//
// The same enumeration then verifies the §5 element-pruning soundness
// contract: whenever ElementMayQualify(validity) is false, NO non-empty
// result time inside `validity` satisfies the predicate.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "search/predicate.h"
#include "temporal/interval.h"
#include "temporal/interval_set.h"

namespace tgks {
namespace {

using search::PredicateExpr;
using search::PredicateOp;
using temporal::Interval;
using temporal::IntervalSet;
using temporal::TimePoint;

constexpr TimePoint kTimeline = 6;
constexpr unsigned kNumSets = 1u << kTimeline;  // 64 subsets, 63 non-empty.

IntervalSet SetFromMask(unsigned mask) {
  std::vector<Interval> points;
  for (TimePoint t = 0; t < kTimeline; ++t) {
    if (mask & (1u << t)) points.push_back(Interval::Point(t));
  }
  return IntervalSet(std::move(points));
}

/// First-principles atom semantics over a bitmask result time.
bool ModelAtom(PredicateOp op, TimePoint t1, TimePoint t2, unsigned mask) {
  const auto has = [&](TimePoint t) {
    return t >= 0 && t < kTimeline && (mask & (1u << t));
  };
  TimePoint lo = -1, hi = -1;
  for (TimePoint t = 0; t < kTimeline; ++t) {
    if (has(t)) {
      if (lo < 0) lo = t;
      hi = t;
    }
  }
  switch (op) {
    case PredicateOp::kPrecedes:
      return lo >= 0 && lo < t1;  // Some instant < t1 iff the earliest is.
    case PredicateOp::kFollows:
      return hi > t1;  // Some instant > t1 iff the latest is.
    case PredicateOp::kMeets:
      return has(t1) && (t1 == lo || t1 == hi);
    case PredicateOp::kOverlaps:
      for (TimePoint t = t1; t <= t2; ++t) {
        if (has(t)) return true;
      }
      return false;
    case PredicateOp::kContains:
      for (TimePoint t = t1; t <= t2; ++t) {
        if (!has(t)) return false;
      }
      return true;
    case PredicateOp::kContainedBy:
      for (TimePoint t = 0; t < kTimeline; ++t) {
        if (has(t) && (t < t1 || t > t2)) return false;
      }
      return true;
  }
  return false;
}

std::shared_ptr<const PredicateExpr> MakeAtom(PredicateOp op, TimePoint t1,
                                              TimePoint t2) {
  if (op == PredicateOp::kOverlaps || op == PredicateOp::kContains ||
      op == PredicateOp::kContainedBy) {
    return PredicateExpr::Atom(op, t1, t2);
  }
  return PredicateExpr::Atom(op, t1);
}

struct AtomCase {
  PredicateOp op;
  TimePoint t1;
  TimePoint t2;  // Unused for instant atoms.
};

std::vector<AtomCase> AllAtomCases() {
  std::vector<AtomCase> cases;
  for (const PredicateOp op :
       {PredicateOp::kPrecedes, PredicateOp::kFollows, PredicateOp::kMeets}) {
    for (TimePoint t = 0; t < kTimeline; ++t) cases.push_back({op, t, t});
  }
  for (const PredicateOp op :
       {PredicateOp::kOverlaps, PredicateOp::kContains,
        PredicateOp::kContainedBy}) {
    for (TimePoint a = 0; a < kTimeline; ++a) {
      for (TimePoint b = a; b < kTimeline; ++b) cases.push_back({op, a, b});
    }
  }
  return cases;
}

TEST(PredicateTruthTableTest, AtomsMatchModelOnEveryResultTime) {
  for (const AtomCase& c : AllAtomCases()) {
    const auto expr = MakeAtom(c.op, c.t1, c.t2);
    for (unsigned mask = 1; mask < kNumSets; ++mask) {  // Non-empty only.
      const IntervalSet time = SetFromMask(mask);
      EXPECT_EQ(expr->EvalResultTime(time), ModelAtom(c.op, c.t1, c.t2, mask))
          << expr->ToString() << " on " << time.ToString();
    }
  }
}

TEST(PredicateTruthTableTest, NotNegatesEveryAtomEverywhere) {
  for (const AtomCase& c : AllAtomCases()) {
    const auto atom = MakeAtom(c.op, c.t1, c.t2);
    const auto negated = PredicateExpr::Not(atom);
    for (unsigned mask = 1; mask < kNumSets; ++mask) {
      const IntervalSet time = SetFromMask(mask);
      EXPECT_EQ(negated->EvalResultTime(time), !atom->EvalResultTime(time))
          << negated->ToString() << " on " << time.ToString();
    }
  }
}

TEST(PredicateTruthTableTest, AndOrComposeTruthFunctionally) {
  // Every pair drawn from a representative atom set, all 63 result times.
  const std::vector<std::shared_ptr<const PredicateExpr>> atoms = {
      PredicateExpr::Atom(PredicateOp::kPrecedes, 3),
      PredicateExpr::Atom(PredicateOp::kFollows, 2),
      PredicateExpr::Atom(PredicateOp::kMeets, 1),
      PredicateExpr::Atom(PredicateOp::kOverlaps, 1, 4),
      PredicateExpr::Atom(PredicateOp::kContains, 2, 3),
      PredicateExpr::Atom(PredicateOp::kContainedBy, 0, 4),
  };
  for (const auto& a : atoms) {
    for (const auto& b : atoms) {
      const auto conj = PredicateExpr::And({a, b});
      const auto disj = PredicateExpr::Or({a, b});
      const auto nested =
          PredicateExpr::Or({PredicateExpr::And({a, PredicateExpr::Not(b)}),
                             PredicateExpr::And({PredicateExpr::Not(a), b})});
      for (unsigned mask = 1; mask < kNumSets; ++mask) {
        const IntervalSet time = SetFromMask(mask);
        const bool va = a->EvalResultTime(time);
        const bool vb = b->EvalResultTime(time);
        EXPECT_EQ(conj->EvalResultTime(time), va && vb)
            << conj->ToString() << " on " << time.ToString();
        EXPECT_EQ(disj->EvalResultTime(time), va || vb)
            << disj->ToString() << " on " << time.ToString();
        // XOR through AND/OR/NOT exercises three-deep nesting.
        EXPECT_EQ(nested->EvalResultTime(time), va != vb)
            << nested->ToString() << " on " << time.ToString();
      }
    }
  }
}

TEST(PredicateTruthTableTest, ElementPruningIsSoundForEveryAtom) {
  // §5 soundness: ElementMayQualify(v) == false must imply that NO
  // non-empty result time contained in v satisfies the predicate — a
  // result routed through the element has val(R) ⊆ val(element).
  for (const bool containedby_prune : {false, true}) {
    for (const AtomCase& c : AllAtomCases()) {
      const auto expr = MakeAtom(c.op, c.t1, c.t2);
      for (unsigned vmask = 1; vmask < kNumSets; ++vmask) {
        const IntervalSet validity = SetFromMask(vmask);
        if (expr->ElementMayQualify(validity, containedby_prune)) continue;
        for (unsigned rmask = 1; rmask < kNumSets; ++rmask) {
          if ((rmask & ~vmask) != 0) continue;  // val(R) ⊆ validity only.
          EXPECT_FALSE(expr->EvalResultTime(SetFromMask(rmask)))
              << expr->ToString() << ": pruned validity "
              << validity.ToString() << " admits result time "
              << SetFromMask(rmask).ToString()
              << " (containedby_prune=" << containedby_prune << ")";
        }
      }
    }
  }
}

TEST(PredicateTruthTableTest, ElementPruningIsSoundForCompositions) {
  const std::vector<std::shared_ptr<const PredicateExpr>> exprs = {
      PredicateExpr::And({PredicateExpr::Atom(PredicateOp::kContains, 1, 2),
                          PredicateExpr::Atom(PredicateOp::kFollows, 3)}),
      PredicateExpr::Or({PredicateExpr::Atom(PredicateOp::kOverlaps, 0, 1),
                         PredicateExpr::Atom(PredicateOp::kOverlaps, 4, 5)}),
      PredicateExpr::Not(PredicateExpr::Atom(PredicateOp::kMeets, 2)),
      PredicateExpr::And(
          {PredicateExpr::Atom(PredicateOp::kPrecedes, 4),
           PredicateExpr::Or(
               {PredicateExpr::Atom(PredicateOp::kContains, 0, 0),
                PredicateExpr::Not(
                    PredicateExpr::Atom(PredicateOp::kFollows, 1))})}),
  };
  for (const auto& expr : exprs) {
    for (unsigned vmask = 1; vmask < kNumSets; ++vmask) {
      const IntervalSet validity = SetFromMask(vmask);
      if (expr->ElementMayQualify(validity)) continue;
      for (unsigned rmask = 1; rmask < kNumSets; ++rmask) {
        if ((rmask & ~vmask) != 0) continue;
        EXPECT_FALSE(expr->EvalResultTime(SetFromMask(rmask)))
            << expr->ToString() << ": pruned validity " << validity.ToString()
            << " admits " << SetFromMask(rmask).ToString();
      }
    }
  }
}

TEST(PredicateTruthTableTest, PruningIsExactImpliesAcceptance) {
  // Dual contract: when PruningIsExact(), every result whose elements all
  // passed the prune satisfies the predicate. For a pure CONTAINS
  // conjunction, val(R) ⊆ validity is not enough — val(R) must itself pass;
  // exactness means EvalResultTime(validity-passing val(R)) is implied by
  // every element passing. Since val(R) is the intersection of element
  // validities, it suffices to check: validity passes ⇒ every subset that
  // still contains the window passes. Here: the prune keeps only elements
  // whose validity contains [a,b]; an intersection of such sets still
  // contains [a,b].
  const auto contains = PredicateExpr::Atom(PredicateOp::kContains, 2, 4);
  ASSERT_TRUE(contains->PruningIsExact());
  const auto conj = PredicateExpr::And(
      {PredicateExpr::Atom(PredicateOp::kContains, 1, 2),
       PredicateExpr::Atom(PredicateOp::kContains, 4, 4)});
  ASSERT_TRUE(conj->PruningIsExact());
  for (unsigned a = 1; a < kNumSets; ++a) {
    for (unsigned b = 1; b < kNumSets; ++b) {
      const unsigned inter = a & b;
      if (inter == 0) continue;
      for (const auto& expr : {contains, conj}) {
        if (expr->ElementMayQualify(SetFromMask(a)) &&
            expr->ElementMayQualify(SetFromMask(b))) {
          EXPECT_TRUE(expr->EvalResultTime(SetFromMask(inter)))
              << expr->ToString() << " with elements " << SetFromMask(a)
              << " and " << SetFromMask(b);
        }
      }
    }
  }
  // And the factories that are NOT exact say so.
  EXPECT_FALSE(PredicateExpr::Atom(PredicateOp::kPrecedes, 3)->PruningIsExact());
  EXPECT_FALSE(
      PredicateExpr::Not(contains)->PruningIsExact());
}

}  // namespace
}  // namespace tgks
