// QuadHeap: differential check against std::priority_queue.
//
// The iterators rely on a strong property: with a strict TOTAL order
// comparator, the 4-ary heap's pop sequence is bit-identical to
// std::priority_queue's, because the max element is unique at every pop
// regardless of internal heap shape. The differential tests interleave
// random push/pop traffic and require identical observable behavior at
// every step, with comparators matching the search and Dijkstra queues.

#include <cstdint>
#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "search/quad_heap.h"

namespace tgks::search {
namespace {

struct Entry {
  double score;
  int64_t id;
};

/// The search-queue shape: better score first, then smaller id — a strict
/// total order when ids are unique.
struct EntryBetter {
  bool operator()(const Entry& a, const Entry& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  }
};

/// std::priority_queue wants "less" (worse-first) ordering.
struct EntryWorse {
  bool operator()(const Entry& a, const Entry& b) const {
    return EntryBetter()(b, a);
  }
};

TEST(QuadHeapTest, BasicPushPopOrder) {
  QuadHeap<Entry, EntryBetter> heap;
  EXPECT_TRUE(heap.empty());
  heap.push({1.0, 3});
  heap.push({5.0, 1});
  heap.push({5.0, 0});  // Ties break toward the smaller id.
  heap.push({2.0, 2});
  EXPECT_EQ(heap.size(), 4u);
  EXPECT_EQ(heap.top().id, 0);
  heap.pop();
  EXPECT_EQ(heap.top().id, 1);
  heap.pop();
  EXPECT_EQ(heap.top().id, 2);
  heap.pop();
  EXPECT_EQ(heap.top().id, 3);
  heap.pop();
  EXPECT_TRUE(heap.empty());
}

TEST(QuadHeapTest, ClearKeepsNothingLive) {
  QuadHeap<Entry, EntryBetter> heap;
  for (int i = 0; i < 100; ++i) heap.push({static_cast<double>(i), i});
  heap.clear();
  EXPECT_TRUE(heap.empty());
  heap.push({-1.0, 7});
  EXPECT_EQ(heap.top().id, 7);
}

TEST(QuadHeapTest, DifferentialAgainstPriorityQueue) {
  Rng rng(987654321);
  for (int trial = 0; trial < 20; ++trial) {
    QuadHeap<Entry, EntryBetter> ours;
    std::priority_queue<Entry, std::vector<Entry>, EntryWorse> ref;
    int64_t next_id = 0;
    for (int op = 0; op < 2000; ++op) {
      ASSERT_EQ(ours.empty(), ref.empty());
      ASSERT_EQ(ours.size(), ref.size());
      if (!ours.empty()) {
        // Identical top at EVERY step, not just at drain time.
        ASSERT_EQ(ours.top().score, ref.top().score) << "trial " << trial;
        ASSERT_EQ(ours.top().id, ref.top().id) << "trial " << trial;
      }
      if (ref.empty() || rng.Bernoulli(0.6)) {
        // Coarse scores force plenty of ties onto the id tie-break.
        const Entry e{static_cast<double>(rng.Uniform(8)), next_id++};
        ours.push(e);
        ref.push(e);
      } else {
        ours.pop();
        ref.pop();
      }
    }
    while (!ref.empty()) {
      ASSERT_FALSE(ours.empty());
      ASSERT_EQ(ours.top().id, ref.top().id);
      ours.pop();
      ref.pop();
    }
    EXPECT_TRUE(ours.empty());
  }
}

TEST(QuadHeapTest, DifferentialWithDijkstraShapedComparator) {
  // Smallest (dist, node) pops first — the baseline Dijkstra queue.
  struct Dist {
    double dist;
    int32_t node;
  };
  struct DistBetter {
    bool operator()(const Dist& a, const Dist& b) const {
      if (a.dist != b.dist) return a.dist < b.dist;
      return a.node < b.node;
    }
  };
  struct DistWorse {
    bool operator()(const Dist& a, const Dist& b) const {
      return DistBetter()(b, a);
    }
  };
  Rng rng(13);
  QuadHeap<Dist, DistBetter> ours;
  std::priority_queue<Dist, std::vector<Dist>, DistWorse> ref;
  for (int op = 0; op < 5000; ++op) {
    if (ref.empty() || rng.Bernoulli(0.55)) {
      const Dist d{static_cast<double>(rng.Uniform(50)) * 0.5,
                   static_cast<int32_t>(rng.Uniform(1000))};
      ours.push(d);
      ref.push(d);
    } else {
      ASSERT_EQ(ours.top().dist, ref.top().dist);
      // Duplicate (dist, node) pairs are possible here, so the order is a
      // strict weak order only; dist equality is still guaranteed.
      ours.pop();
      ref.pop();
    }
  }
}

}  // namespace
}  // namespace tgks::search
