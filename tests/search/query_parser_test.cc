#include "search/query_parser.h"

#include <gtest/gtest.h>

namespace tgks::search {
namespace {

TEST(QueryParserTest, BareKeywords) {
  auto q = ParseQuery("Mary, John");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->keywords.size(), 2u);
  EXPECT_EQ(q->keywords[0], "mary");
  EXPECT_EQ(q->keywords[1], "john");
  EXPECT_EQ(q->predicate, nullptr);
  EXPECT_EQ(q->ranking.primary(), RankFactor::kRelevance);
}

TEST(QueryParserTest, CommasOptional) {
  auto q = ParseQuery("graph search temporal");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->keywords.size(), 3u);
}

TEST(QueryParserTest, QuotedPhraseSplitsIntoWords) {
  auto q = ParseQuery("\"graph search\", gray");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->keywords.size(), 3u);
  EXPECT_EQ(q->keywords[0], "graph");
  EXPECT_EQ(q->keywords[1], "search");
  EXPECT_EQ(q->keywords[2], "gray");
}

TEST(QueryParserTest, DuplicateKeywordsDedupedPreservingFirstOccurrence) {
  // Duplicates would create redundant identical iterators; the parser drops
  // them but MUST keep first-occurrence order — iterator creation order is
  // part of the engine's reproducible-work contract (docs/caching.md).
  auto q = ParseQuery("Beta, alpha, beta, ALPHA, gamma");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->keywords,
            (std::vector<std::string>{"beta", "alpha", "gamma"}));
}

TEST(QueryParserTest, KeywordFingerprintIsOrderAndDuplicateInvariant) {
  auto a = ParseQuery("beta, alpha");
  auto b = ParseQuery("alpha, beta, alpha");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same keyword SET -> same fingerprint, even though keyword order (and
  // thus ToString) differs; the cache layers key on the set semantics.
  EXPECT_EQ(a->KeywordFingerprint(), b->KeywordFingerprint());
  EXPECT_NE(a->ToString(), b->ToString());

  auto c = ParseQuery("alpha, gamma");
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->KeywordFingerprint(), c->KeywordFingerprint());
}

// Table 1: the paper's renderings of Q1-Q3.
TEST(QueryParserTest, Table1Q1) {
  auto q = ParseQuery("Mary, John rank by ascending order of result start time");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->keywords.size(), 2u);
  ASSERT_EQ(q->ranking.factors.size(), 1u);
  EXPECT_EQ(q->ranking.primary(), RankFactor::kStartTimeAsc);
}

TEST(QueryParserTest, Table1Q2) {
  auto q = ParseQuery("Mike, friend rank by descending order of duration");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->ranking.primary(), RankFactor::kDurationDesc);
}

TEST(QueryParserTest, Table1Q3) {
  auto q = ParseQuery("Microsoft, employee result time precedes 2016");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_NE(q->predicate, nullptr);
  EXPECT_EQ(q->predicate->ToString(), "result time precedes 2016");
  EXPECT_EQ(q->ranking.primary(), RankFactor::kRelevance);
}

TEST(QueryParserTest, AllAtomOperators) {
  const struct {
    const char* text;
    const char* expect;
  } cases[] = {
      {"a result time precedes 3", "result time precedes 3"},
      {"a result time follows 3", "result time follows 3"},
      {"a result time meets 3", "result time meets 3"},
      {"a result time overlaps [2,4]", "result time overlaps [2,4]"},
      {"a result time overlaps 2", "result time overlaps [2,2]"},
      {"a result time contains [2,4]", "result time contains [2,4]"},
      {"a result time contained by [2,4]", "result time contained by [2,4]"},
      {"a result time is contained by [2,4]",
       "result time contained by [2,4]"},
  };
  for (const auto& c : cases) {
    auto q = ParseQuery(c.text);
    ASSERT_TRUE(q.ok()) << c.text << ": " << q.status();
    ASSERT_NE(q->predicate, nullptr) << c.text;
    EXPECT_EQ(q->predicate->ToString(), c.expect);
  }
}

TEST(QueryParserTest, BooleanCombinations) {
  auto q = ParseQuery(
      "a, b result time precedes 5 and not result time follows 5 "
      "rank by descending order of relevance");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->predicate->ToString(),
            "(result time precedes 5 and not result time follows 5)");
}

TEST(QueryParserTest, ParenthesesAndOr) {
  auto q = ParseQuery(
      "a (result time precedes 3 or result time follows 7) and "
      "result time contains [4,5]");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->predicate->ToString(),
            "((result time precedes 3 or result time follows 7) and "
            "result time contains [4,5])");
}

TEST(QueryParserTest, CombinedRankingFactors) {
  auto q = ParseQuery(
      "a, b rank by descending order of result end time, "
      "descending order of relevance");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->ranking.factors.size(), 2u);
  EXPECT_EQ(q->ranking.factors[0], RankFactor::kEndTimeDesc);
  EXPECT_EQ(q->ranking.factors[1], RankFactor::kRelevance);
}

TEST(QueryParserTest, RepeatedRankBy) {
  auto q = ParseQuery(
      "a rank by descending order of duration rank by descending order of "
      "relevance");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->ranking.factors.size(), 2u);
}

// Q1-Q9 from the introduction, rendered in the syntax.
TEST(QueryParserTest, IntroductionQueriesExpressible) {
  const char* queries[] = {
      // Q1: k earliest relationships between Mary and John.
      "Mary, John rank by ascending order of result start time",
      // Q2: friends of Mike by descending friendship duration.
      "Mike, friend rank by descending order of duration",
      // Q3: employed by Microsoft before 2016.
      "Microsoft, employee result time precedes 2016",
      // Q4: paper by Dimitris valid through 2004-2006.
      "Dimitris, paper result time contains [2004,2006]",
      // Q5: earliest relationship of Gray and SIGMOD.
      "Gray, SIGMOD rank by ascending order of result start time",
      // Q6: paper on graph search after 2015.
      "\"graph search\", paper result time follows 2015",
      // Q7: Tuberin/Hamartin discovered after 2004 by time of discovery.
      "Tuberin, Hamartin result time follows 2004 "
      "rank by ascending order of result start time",
      // Q8: subworkflows gone after July 2010 (instant 130 say).
      "GenBank, \"Process Blast\" result time precedes 130 and "
      "not result time follows 130",
      // Q9: workflows created after 2009.
      "workflow, \"spectral analysis\" result time follows 2009",
  };
  for (const char* text : queries) {
    auto q = ParseQuery(text);
    EXPECT_TRUE(q.ok()) << text << ": " << q.status();
  }
}

TEST(QueryParserTest, Errors) {
  const char* bad[] = {
      "",                                        // No keywords.
      "result time precedes 3",                  // Predicate without keyword.
      "a result time precedes",                  // Missing operand.
      "a result time precedes x",                // Non-numeric operand.
      "a result time resembles 3",               // Unknown operator.
      "a result time overlaps [5,2]",            // Empty window.
      "a result time overlaps [2,4",             // Unterminated bracket.
      "a rank by sideways order of relevance",   // Bad direction.
      "a rank by descending order of funkiness", // Unknown factor.
      "a rank by ascending order of duration",   // Unsupported combination.
      "a \"unterminated",                        // Bad quoting.
      "a result time precedes 3 trailing",       // Trailing junk.
  };
  for (const char* text : bad) {
    auto q = ParseQuery(text);
    EXPECT_FALSE(q.ok()) << text;
  }
}

// Structured errors: category + byte offset + the same message the Status
// carries (so CLI output is unchanged by the structured layer).
TEST(QueryParserTest, StructuredErrorsCarryCodeOffsetAndMessage) {
  struct Case {
    const char* text;
    ParseErrorCode code;
    size_t offset;
  };
  const Case cases[] = {
      {"a \"unterminated", ParseErrorCode::kUnterminatedQuote, 2},
      {"a result time precedes x", ParseErrorCode::kUnexpectedToken, 23},
      {"a result time resembles 3", ParseErrorCode::kBadPredicate, 14},
      {"a result time overlaps [5,2]", ParseErrorCode::kBadRange, 23},
      {"a result time overlaps [2,4", ParseErrorCode::kUnexpectedToken, 27},
      {"a rank by sideways order of relevance", ParseErrorCode::kBadRanking,
       10},
      {"a rank by descending order of funkiness", ParseErrorCode::kBadRanking,
       30},
      {"a result time precedes 3 trailing", ParseErrorCode::kTrailingInput,
       25},
      {"!!!", ParseErrorCode::kEmptyKeyword, 0},
      {"result time precedes 3", ParseErrorCode::kMissingKeywords, 0},
  };
  for (const Case& c : cases) {
    ParseErrorDetail detail;
    auto q = ParseQuery(c.text, &detail);
    ASSERT_FALSE(q.ok()) << c.text;
    EXPECT_EQ(detail.code, c.code)
        << c.text << " -> " << ParseErrorCodeName(detail.code);
    EXPECT_EQ(detail.offset, c.offset) << c.text;
    // The detail message matches the Status message byte for byte.
    EXPECT_EQ(detail.message, q.status().message()) << c.text;
    EXPECT_FALSE(detail.message.empty()) << c.text;
  }
}

TEST(QueryParserTest, StructuredErrorDetailUntouchedOnSuccess) {
  ParseErrorDetail detail;
  detail.code = ParseErrorCode::kBadNumber;
  detail.offset = 99;
  detail.message = "sentinel";
  auto q = ParseQuery("mary, john", &detail);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(detail.code, ParseErrorCode::kBadNumber);
  EXPECT_EQ(detail.offset, 99u);
  EXPECT_EQ(detail.message, "sentinel");
}

TEST(QueryParserTest, ErrorCodeNamesAreStable) {
  EXPECT_EQ(ParseErrorCodeName(ParseErrorCode::kNone), "none");
  EXPECT_EQ(ParseErrorCodeName(ParseErrorCode::kUnterminatedQuote),
            "unterminated-quote");
  EXPECT_EQ(ParseErrorCodeName(ParseErrorCode::kUnexpectedToken),
            "unexpected-token");
  EXPECT_EQ(ParseErrorCodeName(ParseErrorCode::kMissingKeywords),
            "missing-keywords");
  EXPECT_EQ(ParseErrorCodeName(ParseErrorCode::kTrailingInput),
            "trailing-input");
}

TEST(QueryParserTest, RoundTripThroughToString) {
  auto q = ParseQuery(
      "mary, john result time overlaps [2,4] "
      "rank by descending order of duration");
  ASSERT_TRUE(q.ok());
  auto q2 = ParseQuery(q->ToString());
  ASSERT_TRUE(q2.ok()) << q->ToString() << " -> " << q2.status();
  EXPECT_EQ(q2->keywords, q->keywords);
  EXPECT_EQ(q2->predicate->ToString(), q->predicate->ToString());
  EXPECT_EQ(q2->ranking.factors, q->ranking.factors);
}

}  // namespace
}  // namespace tgks::search
