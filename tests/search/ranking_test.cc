#include "search/ranking.h"

#include <gtest/gtest.h>

namespace tgks::search {
namespace {

using temporal::IntervalSet;

TEST(RankingTest, RelevancePrefersSmallerWeight) {
  const RankingSpec spec;  // Default: relevance.
  const auto light = MakeScore(spec, 2.0, IntervalSet{{0, 5}});
  const auto heavy = MakeScore(spec, 5.0, IntervalSet{{0, 5}});
  EXPECT_TRUE(ScoreBetter(light, heavy));
  EXPECT_FALSE(ScoreBetter(heavy, light));
  EXPECT_FALSE(ScoreBetter(light, light));
}

TEST(RankingTest, EndTimePrefersLaterEnd) {
  const RankingSpec spec{{RankFactor::kEndTimeDesc}};
  const auto late = MakeScore(spec, 9.0, IntervalSet{{0, 7}});
  const auto early = MakeScore(spec, 1.0, IntervalSet{{0, 5}});
  EXPECT_TRUE(ScoreBetter(late, early));
}

TEST(RankingTest, StartTimePrefersEarlierStart) {
  const RankingSpec spec{{RankFactor::kStartTimeAsc}};
  const auto early = MakeScore(spec, 9.0, IntervalSet{{1, 7}});
  const auto late = MakeScore(spec, 1.0, IntervalSet{{3, 7}});
  EXPECT_TRUE(ScoreBetter(early, late));
}

TEST(RankingTest, DurationPrefersLonger) {
  const RankingSpec spec{{RankFactor::kDurationDesc}};
  const auto longer = MakeScore(spec, 9.0, IntervalSet{{0, 3}, {5, 9}});  // 9.
  const auto shorter = MakeScore(spec, 1.0, IntervalSet{{0, 7}});         // 8.
  EXPECT_TRUE(ScoreBetter(longer, shorter));
}

TEST(RankingTest, LexicographicCombination) {
  const RankingSpec spec{{RankFactor::kEndTimeDesc, RankFactor::kRelevance}};
  const auto a = MakeScore(spec, 2.0, IntervalSet{{0, 5}});
  const auto b = MakeScore(spec, 9.0, IntervalSet{{0, 5}});  // Same end.
  const auto c = MakeScore(spec, 1.0, IntervalSet{{0, 4}});  // Earlier end.
  EXPECT_TRUE(ScoreBetter(a, b));  // Tie on end time -> relevance decides.
  EXPECT_TRUE(ScoreBetter(b, c));  // End time dominates weight.
}

TEST(RankingTest, EmptyTimeScoresWorst) {
  const RankingSpec spec{{RankFactor::kEndTimeDesc}};
  const auto empty = MakeScore(spec, 0.0, IntervalSet{});
  const auto any = MakeScore(spec, 100.0, IntervalSet{{0, 0}});
  EXPECT_TRUE(ScoreBetter(any, empty));
}

TEST(RankingTest, MonotonicityUnderExpansion) {
  // Corollary 3.3's premise: shrinking time / growing weight never improves
  // any factor.
  const IntervalSet before{{2, 8}};
  const IntervalSet after{{3, 6}};  // Expansion intersected away instants.
  for (const RankFactor factor :
       {RankFactor::kRelevance, RankFactor::kEndTimeDesc,
        RankFactor::kStartTimeAsc, RankFactor::kDurationDesc}) {
    const RankingSpec spec{{factor}};
    const auto parent = MakeScore(spec, 3.0, before);
    const auto child = MakeScore(spec, 4.0, after);
    EXPECT_FALSE(ScoreBetter(child, parent)) << RankFactorName(factor);
  }
}

TEST(RankingTest, PrimaryIsTemporal) {
  EXPECT_FALSE(RankingSpec{}.PrimaryIsTemporal());
  EXPECT_TRUE((RankingSpec{{RankFactor::kEndTimeDesc}}).PrimaryIsTemporal());
  EXPECT_FALSE((RankingSpec{{RankFactor::kRelevance,
                             RankFactor::kDurationDesc}})
                   .PrimaryIsTemporal());
}

TEST(RankingTest, BestPossibleBeatsEverything) {
  const RankingSpec spec{{RankFactor::kDurationDesc, RankFactor::kRelevance}};
  const auto best = BestPossibleScore(spec);
  const auto real = MakeScore(spec, 1.0, IntervalSet{{0, 9}});
  EXPECT_TRUE(ScoreBetter(best, real));
}

TEST(RankingTest, ToStringAndFormat) {
  const RankingSpec spec{{RankFactor::kStartTimeAsc}};
  EXPECT_EQ(spec.ToString(), "rank by ascending order of result start time");
  const auto score = MakeScore(spec, 1.0, IntervalSet{{3, 7}});
  EXPECT_EQ(FormatScore(spec, score), "start-time=3");
  const RankingSpec rel;  // Relevance.
  EXPECT_EQ(FormatScore(rel, MakeScore(rel, 4.0, IntervalSet{})),
            "relevance=0.25");
}

}  // namespace
}  // namespace tgks::search
