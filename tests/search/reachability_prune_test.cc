// Pruning-soundness differential suite for the opt-in reachability prune
// (SearchOptions::reachability_prune, docs/reachability.md).
//
// The prune's contract: dropping match sources with empty viability and
// discarding expansion NTDs whose time set misses the neighbor's viability
// never changes the result set of an exhaustive run (provable — a wholly
// non-viable NTD can never be part of an accepted tree), and across this
// suite's pinned 60-graph ranking x bound sweep the BOUNDED runs agree
// exactly too (result sets, scores, stop reasons), sequentially and in
// parallel-keyword mode. On larger graphs a bounded stop can fire at a
// slightly different frontier point and swap results at the k-th boundary
// (docs/reachability.md, "Bounded stops"); that behavior is pinned
// bit-for-bit by scripts/workcount_check.sh --pruned, not here. The sweep
// runs the same 60 seeded random graphs the snapshot-reducibility oracle
// uses (10 seeds x 6 rounds), at k = 5 and exhaustively (k = 0).
//
// Also pinned here:
//   - SearchInverse (label-correcting iterators) with the prune returns the
//     same trees/values as without;
//   - the baseline snapshot Dijkstra's viability gate hides exactly the
//     nodes whose viability misses the snapshot and never changes the
//     distance of a node it keeps;
//   - reachability_prunes stays zero when the option is off.

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/dijkstra_iterator.h"
#include "common/random.h"
#include "exec/thread_pool.h"
#include "graph/graph_builder.h"
#include "graph/reachability_index.h"
#include "search/label_correcting_iterator.h"
#include "search/search_engine.h"

namespace tgks::search {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TemporalGraph;
using temporal::IntervalSet;
using temporal::TimePoint;

TemporalGraph RandomGraph(Rng* rng, int num_nodes, int num_edges,
                          TimePoint horizon) {
  while (true) {
    GraphBuilder b(horizon, graph::ValidityPolicy::kClamp);
    std::vector<std::pair<TimePoint, TimePoint>> node_span;
    for (int i = 0; i < num_nodes; ++i) {
      const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
      const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
      node_span.emplace_back(std::min(a, c), std::max(a, c));
      b.AddNode("n" + std::to_string(i),
                IntervalSet{{node_span.back().first, node_span.back().second}},
                static_cast<double>(rng->Uniform(3)));
    }
    for (int i = 0; i < num_edges; ++i) {
      const NodeId u = static_cast<NodeId>(rng->Uniform(num_nodes));
      const NodeId v = static_cast<NodeId>(rng->Uniform(num_nodes));
      if (u == v) continue;
      const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
      const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
      const TimePoint lo = std::max({std::min(a, c), node_span[u].first,
                                     node_span[v].first});
      const TimePoint hi = std::min({std::max(a, c), node_span[u].second,
                                     node_span[v].second});
      if (lo > hi) continue;
      b.AddEdge(u, v, IntervalSet{{std::min(a, c), std::max(a, c)}},
                static_cast<double>(1 + rng->Uniform(3)));
    }
    auto g = b.Build();
    if (g.ok()) return std::move(g).value();
  }
}

std::vector<NodeId> RandomMatches(Rng* rng, const TemporalGraph& g, int k) {
  std::vector<NodeId> out;
  for (const uint64_t v : rng->SampleWithoutReplacement(
           static_cast<uint64_t>(g.num_nodes()), static_cast<uint64_t>(k))) {
    out.push_back(static_cast<NodeId>(v));
  }
  return out;
}

/// Reachability-oracle strengthening of the §4.2 bound tests: every
/// accepted result tree encodes a path from its root to each keyword's
/// matched node, valid over the whole tree time — so the labeling must
/// confirm CanReach(root, t, keyword_node) at every instant, and
/// EarliestArrival(root, t, keyword_node) must equal t exactly (the lower
/// bound is tight on instants where a path exists). A bound-stop that
/// admitted a tree violating this would be unsound.
void ExpectResultsRespectReachability(const TemporalGraph& g,
                                      const SearchResponse& r,
                                      const std::string& context) {
  const graph::ReachabilityIndex& index = g.reachability();
  for (const ResultTree& tree : r.results) {
    for (const NodeId kw_node : tree.keyword_nodes) {
      for (const temporal::Interval& iv : tree.time.intervals()) {
        for (TimePoint t = iv.start; t <= iv.end; ++t) {
          EXPECT_TRUE(index.CanReach(tree.root, t, kw_node))
              << context << ": root " << tree.root << " !-> " << kw_node
              << " at t=" << t;
          EXPECT_EQ(index.EarliestArrival(tree.root, t, kw_node), t)
              << context << ": root " << tree.root << " -> " << kw_node
              << " at t=" << t;
        }
      }
    }
  }
}

/// The parts of a response the prune must leave untouched. Work counters
/// (pops, candidates, ntds_created, ...) legitimately shrink.
void ExpectSameResults(const SearchResponse& off, const SearchResponse& on,
                       const std::string& context) {
  EXPECT_EQ(off.stop_reason, on.stop_reason) << context;
  EXPECT_EQ(off.exhausted, on.exhausted) << context;
  EXPECT_EQ(off.truncated, on.truncated) << context;
  EXPECT_EQ(off.counters.results, on.counters.results) << context;
  ASSERT_EQ(off.results.size(), on.results.size()) << context;
  for (size_t i = 0; i < off.results.size(); ++i) {
    EXPECT_EQ(off.results[i].score, on.results[i].score)
        << context << " result " << i;
    EXPECT_EQ(off.results[i].Signature(), on.results[i].Signature())
        << context << " result " << i;
    EXPECT_EQ(off.results[i].time.ToString(), on.results[i].time.ToString())
        << context << " result " << i;
  }
}

class ReachabilityPruneDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

// The satellite soundness gate: on 60 random graphs (same seed protocol as
// snapshot_reducibility_test: 10 seeds x 6 rounds), the pruned run must
// reproduce the unpruned run exactly — at k = 5 with every bound kind, at
// k = 0 (exhaustion path), and through the parallel-keyword replay.
TEST_P(ReachabilityPruneDifferentialTest, PruneOnMatchesPruneOffExactly) {
  static constexpr RankFactor kFactors[] = {
      RankFactor::kRelevance, RankFactor::kEndTimeDesc,
      RankFactor::kStartTimeAsc, RankFactor::kDurationDesc};
  static constexpr UpperBoundKind kBounds[] = {UpperBoundKind::kEmpirical,
                                               UpperBoundKind::kAccurate,
                                               UpperBoundKind::kAverage};
  exec::ThreadPool pool{4};
  TaskSubmitFn submit = [&pool](std::function<void()> task) {
    pool.Submit(std::move(task));
  };
  Rng rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    const TemporalGraph g = RandomGraph(&rng, 12, 26, 8);
    const int num_keywords = 2 + static_cast<int>(rng.Uniform(2));
    std::vector<std::vector<NodeId>> matches;
    Query q;
    for (int kw = 0; kw < num_keywords; ++kw) {
      q.keywords.push_back(std::string(1, static_cast<char>('a' + kw)));
      matches.push_back(RandomMatches(&rng, g, 3));
    }
    q.ranking.factors = {kFactors[round % 4]};
    const SearchEngine engine(g);
    const std::string context = "seed " + std::to_string(GetParam()) +
                                " round " + std::to_string(round);

    for (const int32_t k : {5, 0}) {
      SearchOptions off;
      off.k = k;
      off.bound = kBounds[round % 3];
      SearchOptions on = off;
      on.reachability_prune = true;

      auto r_off = engine.SearchWithMatches(q, matches, off);
      auto r_on = engine.SearchWithMatches(q, matches, on);
      ASSERT_TRUE(r_off.ok()) << context;
      ASSERT_TRUE(r_on.ok()) << context;
      const std::string kc = context + " k=" + std::to_string(k);
      ExpectSameResults(*r_off, *r_on, kc);
      ExpectResultsRespectReachability(g, *r_on, kc);
      EXPECT_EQ(r_off->counters.reachability_prunes, 0) << kc;
      EXPECT_GE(r_on->counters.reachability_prunes, 0) << kc;

      // Parallel-keyword mode composes with the prune: the replay contract
      // makes it identical to the pruned sequential run, which this suite
      // just pinned to the unpruned one.
      SearchOptions par = on;
      par.parallel_keywords = true;
      par.task_submitter = &submit;
      auto r_par = engine.SearchWithMatches(q, matches, par);
      ASSERT_TRUE(r_par.ok()) << kc;
      ExpectSameResults(*r_off, *r_par, kc + " parallel");
    }
  }
}

// 10 seeds x 6 rounds = 60 random graphs, mirroring the
// snapshot-reducibility suite's protocol.
INSTANTIATE_TEST_SUITE_P(Seeds, ReachabilityPruneDifferentialTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99,
                                           110));

// The prune must actually fire somewhere across a sweep — otherwise the
// differential suite is vacuous. Checked in aggregate (not per graph; a
// dense small graph can be fully viable).
TEST(ReachabilityPruneTest, PruneFiresSomewhereAcrossSweep) {
  Rng rng(4242);
  int64_t total_prunes = 0;
  for (int round = 0; round < 12; ++round) {
    const TemporalGraph g = RandomGraph(&rng, 14, 20, 8);
    const std::vector<std::vector<NodeId>> matches = {
        RandomMatches(&rng, g, 3), RandomMatches(&rng, g, 3),
        RandomMatches(&rng, g, 3)};
    Query q;
    q.keywords = {"a", "b", "c"};
    const SearchEngine engine(g);
    SearchOptions on;
    on.k = 0;
    on.reachability_prune = true;
    auto r = engine.SearchWithMatches(q, matches, on);
    ASSERT_TRUE(r.ok());
    total_prunes += r->counters.reachability_prunes;
  }
  EXPECT_GT(total_prunes, 0);
}

// SearchInverse (label-correcting iterators over the three non-monotone
// ranking directions) must also return identical trees with the prune on.
TEST(ReachabilityPruneTest, InverseSearchMatchesUnpruned) {
  static constexpr InverseRankFactor kInverse[] = {
      InverseRankFactor::kEndTimeAsc, InverseRankFactor::kStartTimeDesc,
      InverseRankFactor::kDurationAsc};
  Rng rng(987);
  for (int round = 0; round < 9; ++round) {
    const TemporalGraph g = RandomGraph(&rng, 10, 20, 6);
    const std::vector<std::vector<NodeId>> matches = {
        RandomMatches(&rng, g, 2), RandomMatches(&rng, g, 2)};
    const InverseRankFactor factor = kInverse[round % 3];
    const auto off = SearchInverse(g, matches, factor, 0, 200000, false);
    const auto on = SearchInverse(g, matches, factor, 0, 200000, true);
    ASSERT_EQ(off.size(), on.size()) << "round " << round;
    for (size_t i = 0; i < off.size(); ++i) {
      EXPECT_EQ(off[i].value, on[i].value) << "round " << round;
      EXPECT_EQ(off[i].root, on[i].root) << "round " << round;
      EXPECT_EQ(off[i].nodes, on[i].nodes) << "round " << round;
      EXPECT_EQ(off[i].edges, on[i].edges) << "round " << round;
      EXPECT_EQ(off[i].time.ToString(), on[i].time.ToString())
          << "round " << round;
    }
  }
}

// Baseline snapshot Dijkstra: a viability gate hides exactly the nodes
// whose viability misses the snapshot instant; nodes it keeps settle at
// the same distance as without the gate.
TEST(ReachabilityPruneTest, DijkstraViabilityGateIsConsistent) {
  Rng rng(1212);
  for (int round = 0; round < 6; ++round) {
    const TemporalGraph g = RandomGraph(&rng, 12, 26, 8);
    const std::vector<std::vector<NodeId>> matches = {
        RandomMatches(&rng, g, 3), RandomMatches(&rng, g, 3)};
    std::vector<IntervalSet> viability;
    g.reachability().ComputeViability(matches, &viability);
    const NodeId source = matches[0][0];
    for (TimePoint t = 0; t < g.timeline_length(); t += 3) {
      baseline::DijkstraIterator plain(g, source, t);
      baseline::DijkstraIterator gated(g, source, t, &viability);
      while (plain.Next() != graph::kInvalidNode) {
      }
      while (gated.Next() != graph::kInvalidNode) {
      }
      for (NodeId n = 0; n < g.num_nodes(); ++n) {
        const auto gd = gated.DistanceTo(n);
        if (!gd.has_value()) continue;
        // Every gated settle is viable at t and agrees with the plain run.
        EXPECT_TRUE(viability[static_cast<size_t>(n)].Contains(t))
            << "node " << n << " at t=" << t;
        const auto pd = plain.DistanceTo(n);
        ASSERT_TRUE(pd.has_value()) << "node " << n << " at t=" << t;
        EXPECT_EQ(*pd, *gd) << "node " << n << " at t=" << t;
      }
      EXPECT_GE(plain.nodes_settled(), gated.nodes_settled());
      EXPECT_EQ(plain.reachability_prunes(), 0);
    }
  }
}

}  // namespace
}  // namespace tgks::search
