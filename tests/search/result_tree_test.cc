#include "search/result_tree.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "testutil/paper_graphs.h"

namespace tgks::search {
namespace {

using graph::EdgeId;
using graph::GraphBuilder;
using graph::NodeId;
using graph::TemporalGraph;
using temporal::IntervalSet;

// A small forward tree: 0 -> 1 -> 2, 0 -> 3 with controllable validities.
TemporalGraph MakeChainGraph() {
  GraphBuilder b(10);
  b.AddNode("root", IntervalSet{{0, 9}});   // 0
  b.AddNode("mid", IntervalSet{{0, 6}});    // 1
  b.AddNode("k1", IntervalSet{{2, 9}});     // 2
  b.AddNode("k2", IntervalSet{{0, 4}});     // 3
  b.AddEdge(0, 1);                          // e0 [0,6]
  b.AddEdge(1, 2);                          // e1 [2,6]
  b.AddEdge(0, 3);                          // e2 [0,4]
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(ResultTreeTest, AssemblesTwoPathTree) {
  const TemporalGraph g = MakeChainGraph();
  CandidateRejection why;
  auto tree = AssembleCandidate(g, /*root=*/0, {{EdgeId{0}, EdgeId{1}}, {EdgeId{2}}},
                                {NodeId{2}, NodeId{3}}, nullptr, &why);
  ASSERT_TRUE(tree.has_value()) << static_cast<int>(why);
  EXPECT_EQ(tree->root, 0);
  EXPECT_EQ(tree->nodes, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(tree->edges, (std::vector<EdgeId>{0, 1, 2}));
  // Exact time: [0,9]∩[0,6]∩[2,9]∩[0,4]∩edges = [2,4].
  EXPECT_EQ(tree->time, (IntervalSet{{2, 4}}));
  EXPECT_DOUBLE_EQ(tree->total_weight, 3.0);  // Three unit edges.
  EXPECT_EQ(tree->keyword_nodes, (std::vector<NodeId>{2, 3}));
}

TEST(ResultTreeTest, SingleNodeResult) {
  const TemporalGraph g = MakeChainGraph();
  auto tree = AssembleCandidate(g, 2, {{}}, {NodeId{2}});
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->nodes, (std::vector<NodeId>{2}));
  EXPECT_TRUE(tree->edges.empty());
  EXPECT_EQ(tree->time, g.node(2).validity);
  EXPECT_DOUBLE_EQ(tree->total_weight, 0.0);
}

TEST(ResultTreeTest, SharedPrefixDeduplicated) {
  const TemporalGraph g = MakeChainGraph();
  // Keywords 0 and 1 share the prefix edge e0; keyword 2 gives the root a
  // second child so the root rule does not fire.
  auto tree = AssembleCandidate(
      g, 0, {{EdgeId{0}, EdgeId{1}}, {EdgeId{0}}, {EdgeId{2}}},
      {NodeId{2}, NodeId{1}, NodeId{3}});
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->edges, (std::vector<EdgeId>{0, 1, 2}));  // e0 once.
  EXPECT_DOUBLE_EQ(tree->total_weight, 3.0);
}

TEST(ResultTreeTest, SharedSingleChildRootIsReducible) {
  const TemporalGraph g = MakeChainGraph();
  // Both keywords reached through the same first edge: the root has one
  // child and matches nothing, so the lower-rooted duplicate wins.
  CandidateRejection why;
  auto tree = AssembleCandidate(g, 0, {{EdgeId{0}, EdgeId{1}}, {EdgeId{0}}},
                                {NodeId{2}, NodeId{1}}, nullptr, &why);
  EXPECT_FALSE(tree.has_value());
  EXPECT_EQ(why, CandidateRejection::kRootReducible);
}

TEST(ResultTreeTest, RejectsEmptyTime) {
  GraphBuilder b(10);
  b.AddNode("root", IntervalSet{{0, 9}});
  b.AddNode("early", IntervalSet{{0, 2}});
  b.AddNode("late", IntervalSet{{7, 9}});
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  CandidateRejection why;
  auto tree = AssembleCandidate(*g, 0, {{EdgeId{0}}, {EdgeId{1}}},
                                {NodeId{1}, NodeId{2}}, nullptr, &why);
  EXPECT_FALSE(tree.has_value());
  EXPECT_EQ(why, CandidateRejection::kEmptyTime);
}

TEST(ResultTreeTest, RejectsNonTreeUnion) {
  // Diamond: 0->1->3 and 0->2->3; node 3 would have two parents.
  GraphBuilder b(5);
  for (int i = 0; i < 4; ++i) b.AddNode("n" + std::to_string(i));
  b.AddEdge(0, 1);  // e0
  b.AddEdge(1, 3);  // e1
  b.AddEdge(0, 2);  // e2
  b.AddEdge(2, 3);  // e3
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  CandidateRejection why;
  auto tree =
      AssembleCandidate(*g, 0, {{EdgeId{0}, EdgeId{1}}, {EdgeId{2}, EdgeId{3}}},
                        {NodeId{3}, NodeId{3}}, nullptr, &why);
  EXPECT_FALSE(tree.has_value());
  EXPECT_EQ(why, CandidateRejection::kNotATree);
}

TEST(ResultTreeTest, RejectsRootWithSingleChildNotMatching) {
  const TemporalGraph g = MakeChainGraph();
  // Root 0 with both keywords down the same chain: root is reducible.
  CandidateRejection why;
  auto tree = AssembleCandidate(g, 0, {{EdgeId{0}, EdgeId{1}}, {EdgeId{0}}},
                                {NodeId{2}, NodeId{1}}, nullptr, &why);
  // Keyword 2 matches node 1, keyword 1 matches node 2: root 0 covers
  // nothing and has a single child -> reducible.
  EXPECT_FALSE(tree.has_value());
  EXPECT_EQ(why, CandidateRejection::kRootReducible);
}

TEST(ResultTreeTest, RootMatchingAKeywordSurvivesSingleChild) {
  const TemporalGraph g = MakeChainGraph();
  // Keyword 0 matches the root itself, keyword 1 down the chain.
  auto tree = AssembleCandidate(g, 0, {{}, {EdgeId{0}}}, {NodeId{0}, NodeId{1}});
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->root, 0);
  EXPECT_EQ(tree->nodes, (std::vector<NodeId>{0, 1}));
}

TEST(ResultTreeTest, LeafReductionWithMatchSets) {
  const TemporalGraph g = MakeChainGraph();
  // Keyword 0's designated match is leaf 3, but node 1 (interior, on
  // keyword 1's path) also matches it per the match sets: the leaf peels
  // and the tree becomes the chain 0->1->2... whose root then reduces.
  const std::unordered_set<NodeId> set0{NodeId{3}, NodeId{1}};
  const std::unordered_set<NodeId> set1{NodeId{2}};
  std::vector<const std::unordered_set<NodeId>*> sets{&set0, &set1};
  CandidateRejection why;
  auto tree = AssembleCandidate(g, 0, {{EdgeId{2}}, {EdgeId{0}, EdgeId{1}}},
                                {NodeId{3}, NodeId{2}}, &sets, &why);
  // After peeling leaf 3, the root has one child and covers nothing.
  EXPECT_FALSE(tree.has_value());
  EXPECT_EQ(why, CandidateRejection::kRootReducible);
}

TEST(ResultTreeTest, LeafReductionKeepsNeededLeaves) {
  const TemporalGraph g = MakeChainGraph();
  const std::unordered_set<NodeId> set0{NodeId{3}};
  const std::unordered_set<NodeId> set1{NodeId{2}};
  std::vector<const std::unordered_set<NodeId>*> sets{&set0, &set1};
  auto tree = AssembleCandidate(g, 0, {{EdgeId{2}}, {EdgeId{0}, EdgeId{1}}},
                                {NodeId{3}, NodeId{2}}, &sets);
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->nodes, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(ResultTreeTest, SignatureDistinguishesTrees) {
  const TemporalGraph g = MakeChainGraph();
  auto t1 = AssembleCandidate(g, 0, {{EdgeId{0}, EdgeId{1}}, {EdgeId{2}}},
                              {NodeId{2}, NodeId{3}});
  auto t2 = AssembleCandidate(g, 2, {{}}, {NodeId{2}});
  ASSERT_TRUE(t1.has_value());
  ASSERT_TRUE(t2.has_value());
  EXPECT_NE(t1->Signature(), t2->Signature());
  auto t1_again = AssembleCandidate(g, 0, {{EdgeId{0}, EdgeId{1}}, {EdgeId{2}}},
                                    {NodeId{2}, NodeId{3}});
  EXPECT_EQ(t1->Signature(), t1_again->Signature());
}

}  // namespace
}  // namespace tgks::search
