#include "search/search_engine.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "graph/inverted_index.h"
#include "search/query_parser.h"
#include "testutil/paper_graphs.h"

namespace tgks::search {
namespace {

using graph::InvertedIndex;
using graph::NodeId;
using graph::TemporalGraph;
using temporal::IntervalSet;

Query MustParse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << text << ": " << q.status();
  return std::move(q).value();
}

SearchOptions Exhaustive() {
  SearchOptions options;
  options.k = 0;  // ALL.
  return options;
}

// Every returned tree must satisfy Definition 2.2 on its face.
void CheckWellFormed(const TemporalGraph& g, const Query& q,
                     const SearchResponse& r) {
  for (const ResultTree& tree : r.results) {
    EXPECT_FALSE(tree.time.IsEmpty());
    // Exact validity: recompute.
    IntervalSet time = g.node(tree.root).validity;
    for (const NodeId n : tree.nodes) time = time.Intersect(g.node(n).validity);
    for (const auto e : tree.edges) time = time.Intersect(g.edge(e).validity);
    EXPECT_EQ(time, tree.time);
    // Tree shape: |E| = |V| - 1 and every edge endpoint is a tree node.
    EXPECT_EQ(tree.edges.size() + 1, tree.nodes.size());
    for (const auto e : tree.edges) {
      EXPECT_TRUE(std::binary_search(tree.nodes.begin(), tree.nodes.end(),
                                     g.edge(e).src));
      EXPECT_TRUE(std::binary_search(tree.nodes.begin(), tree.nodes.end(),
                                     g.edge(e).dst));
    }
    // Keyword coverage.
    ASSERT_EQ(tree.keyword_nodes.size(), q.keywords.size());
    for (const NodeId kn : tree.keyword_nodes) {
      EXPECT_NE(kn, graph::kInvalidNode);
      EXPECT_TRUE(
          std::binary_search(tree.nodes.begin(), tree.nodes.end(), kn));
    }
    // Predicate.
    if (q.predicate != nullptr) {
      EXPECT_TRUE(q.predicate->EvalResultTime(tree.time));
    }
  }
  // Scores sorted best-first.
  for (size_t i = 1; i < r.results.size(); ++i) {
    EXPECT_FALSE(ScoreBetter(r.results[i].score, r.results[i - 1].score));
  }
}

TEST(SearchEngineTest, IntroMaryJohnFindsValidTreesOnly) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  const Query q = MustParse("mary, john");
  auto r = engine.Search(q, Exhaustive());
  ASSERT_TRUE(r.ok()) << r.status();
  CheckWellFormed(g, q, *r);
  ASSERT_FALSE(r->results.empty());
  // No result may use the Microsoft shortcut (its time would be empty).
  for (const ResultTree& tree : r->results) {
    const bool uses_microsoft = std::binary_search(
        tree.nodes.begin(), tree.nodes.end(), ids.microsoft);
    EXPECT_FALSE(uses_microsoft);
  }
  // The best result connects Mary and John via Bob-Ross (weight 3, valid
  // t6-t7).
  const ResultTree& best = r->results.front();
  EXPECT_DOUBLE_EQ(best.total_weight, 3.0);
  EXPECT_EQ(best.time, (IntervalSet{{6, 7}}));
  // The via-Mike tree (weight 4, valid t4) must also be found.
  const bool found_mike_path = std::any_of(
      r->results.begin(), r->results.end(), [&](const ResultTree& t) {
        return std::binary_search(t.nodes.begin(), t.nodes.end(), ids.mike) &&
               t.time == IntervalSet{{4, 4}};
      });
  EXPECT_TRUE(found_mike_path);
}

TEST(SearchEngineTest, SingleKeywordReturnsMatchesThemselves) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  auto r = engine.Search(MustParse("mary"), Exhaustive());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->results.size(), 1u);
  EXPECT_EQ(r->results[0].root, ids.mary);
  EXPECT_TRUE(r->results[0].edges.empty());
}

TEST(SearchEngineTest, UnknownKeywordYieldsNoResults) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  auto r = engine.Search(MustParse("mary, nonexistent"), Exhaustive());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->results.empty());
  EXPECT_TRUE(r->exhausted);
}

TEST(SearchEngineTest, PredicateFiltersResults) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  // Results valid only before t5: the t6-t7 Ross tree is excluded, the t4
  // Mike tree qualifies ("precedes 5" = some instant < 5).
  const Query q = MustParse("mary, john result time precedes 5");
  auto r = engine.Search(q, Exhaustive());
  ASSERT_TRUE(r.ok());
  CheckWellFormed(g, q, *r);
  ASSERT_FALSE(r->results.empty());
  for (const ResultTree& tree : r->results) {
    EXPECT_LT(tree.time.Start(), 5);
  }
  const bool has_ross_tree = std::any_of(
      r->results.begin(), r->results.end(), [&](const ResultTree& t) {
        return std::binary_search(t.nodes.begin(), t.nodes.end(), ids.ross);
      });
  EXPECT_FALSE(has_ross_tree);
}

TEST(SearchEngineTest, ContainsPredicateExactPruningSkipsFinalCheck) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  const Query q = MustParse("mary, john result time contains [6,7]");
  auto r = engine.Search(q, Exhaustive());
  ASSERT_TRUE(r.ok());
  CheckWellFormed(g, q, *r);
  ASSERT_FALSE(r->results.empty());
  EXPECT_EQ(r->counters.predicate_rejected, 0);
  for (const ResultTree& tree : r->results) {
    EXPECT_TRUE(tree.time.Subsumes(IntervalSet{{6, 7}}));
  }
}

TEST(SearchEngineTest, RankByStartTimePutsEarliestFirst) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  // Q1: earliest relationships between Mary and John.
  const Query q =
      MustParse("mary, john rank by ascending order of result start time");
  auto r = engine.Search(q, Exhaustive());
  ASSERT_TRUE(r.ok());
  CheckWellFormed(g, q, *r);
  ASSERT_GE(r->results.size(), 2u);
  // The t4 Mike tree starts earlier than the t6 Ross tree.
  EXPECT_EQ(r->results.front().time.Start(), 4);
}

TEST(SearchEngineTest, RankByDurationPutsLongestFirst) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  const Query q = MustParse("mary, bob rank by descending order of duration");
  auto r = engine.Search(q, Exhaustive());
  ASSERT_TRUE(r.ok());
  CheckWellFormed(g, q, *r);
  ASSERT_FALSE(r->results.empty());
  // Mary-Bob edge alone: valid t2-t7, duration 6 — the longest possible.
  EXPECT_EQ(r->results.front().time.Duration(), 6);
}

TEST(SearchEngineTest, Fig6EndTimeRankingFindsRootOneResult) {
  // Example 4.1: "k1, k2" rank by end time. The result rooted at node 1 is
  // valid at t1 only; round-robin must find it despite the t2 cloud.
  testutil::Fig6Ids ids;
  const TemporalGraph g = testutil::MakeFig6Graph(&ids);
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  const Query q =
      MustParse("k1, k2 rank by descending order of result end time");
  SearchOptions options;
  options.k = 1;
  options.bound = UpperBoundKind::kAccurate;
  auto r = engine.Search(q, options);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->results.size(), 1u);
  // With bidirectional edges the tree may be rooted at node 1 or at the k1
  // match itself; either way it is the t1-only connection through node 3.
  EXPECT_EQ(r->results[0].time, (IntervalSet{{0, 0}}));
  EXPECT_TRUE(std::binary_search(r->results[0].nodes.begin(),
                                 r->results[0].nodes.end(), ids.n3));
}

TEST(SearchEngineTest, Fig6Example42ResultAtT2) {
  // Example 4.2: "k3, k4" — the result 6-7-9 is valid at t2.
  testutil::Fig6Ids ids;
  const TemporalGraph g = testutil::MakeFig6Graph(&ids);
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  const Query q =
      MustParse("k3, k4 rank by descending order of result end time");
  auto r = engine.Search(q, Exhaustive());
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->results.empty());
  const ResultTree& best = r->results.front();
  EXPECT_EQ(best.time, (IntervalSet{{1, 1}}));
  EXPECT_TRUE(std::binary_search(best.nodes.begin(), best.nodes.end(),
                                 ids.n7));
}

TEST(SearchEngineTest, RoundRobinOnOffSameResultSet) {
  // §6.2.1 reports identical quality with and without round-robin; on an
  // exhaustive run the result sets must match exactly.
  const TemporalGraph g = testutil::MakeFig6Graph();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  const Query q =
      MustParse("k1, k2 rank by descending order of result end time");
  SearchOptions with_rr = Exhaustive();
  SearchOptions without_rr = Exhaustive();
  without_rr.round_robin_keywords = false;
  auto a = engine.Search(q, with_rr);
  auto b = engine.Search(q, without_rr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::set<std::string> sig_a, sig_b;
  for (const auto& t : a->results) sig_a.insert(t.Signature());
  for (const auto& t : b->results) sig_b.insert(t.Signature());
  EXPECT_EQ(sig_a, sig_b);
}

TEST(SearchEngineTest, TopKAccurateBoundFindsTrueTopK) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  const Query q = MustParse("mary, john");
  auto all = engine.Search(q, Exhaustive());
  ASSERT_TRUE(all.ok());
  SearchOptions topk;
  topk.k = 2;
  topk.bound = UpperBoundKind::kAccurate;
  auto top = engine.Search(q, topk);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->results.size(),
            std::min<size_t>(2, all->results.size()));
  for (size_t i = 0; i < top->results.size(); ++i) {
    EXPECT_EQ(top->results[i].score, all->results[i].score) << i;
  }
}

TEST(SearchEngineTest, EmpiricalBoundStopsEarlier) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  const Query q = MustParse("mary, john");
  SearchOptions accurate;
  accurate.k = 1;
  accurate.bound = UpperBoundKind::kAccurate;
  SearchOptions empirical = accurate;
  empirical.bound = UpperBoundKind::kEmpirical;
  auto ra = engine.Search(q, accurate);
  auto re = engine.Search(q, empirical);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(re.ok());
  EXPECT_LE(re->counters.pops, ra->counters.pops);
  ASSERT_EQ(re->results.size(), 1u);
}

TEST(SearchEngineTest, SearchWithMatchesValidatesInput) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const SearchEngine engine(g);
  const Query q = MustParse("a, b");
  EXPECT_FALSE(engine.SearchWithMatches(q, {{0}}).ok());      // Arity.
  EXPECT_FALSE(engine.SearchWithMatches(q, {{0}, {999}}).ok());  // Range.
  EXPECT_FALSE(engine.Search(q).ok());  // No index.
}

TEST(SearchEngineTest, SearchWithExplicitMatches) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  const SearchEngine engine(g);
  const Query q = MustParse("a, b");  // Keywords are placeholders.
  auto r = engine.SearchWithMatches(q, {{ids.mary}, {ids.john}}, Exhaustive());
  ASSERT_TRUE(r.ok());
  CheckWellFormed(g, q, *r);
  EXPECT_FALSE(r->results.empty());
}

TEST(SearchEngineTest, DuplicateTreesReportedOnce) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  auto r = engine.Search(MustParse("mary, john"), Exhaustive());
  ASSERT_TRUE(r.ok());
  std::set<std::string> sigs;
  for (const auto& t : r->results) {
    EXPECT_TRUE(sigs.insert(t.Signature()).second);
  }
}

TEST(SearchEngineTest, MaxPopsTruncates) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  SearchOptions options = Exhaustive();
  options.max_pops = 2;
  auto r = engine.Search(MustParse("mary, john"), options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truncated);
  EXPECT_LE(r->counters.pops, 2);
}

TEST(SearchEngineTest, CountersPopulated) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  auto r = engine.Search(MustParse("mary, john"), Exhaustive());
  ASSERT_TRUE(r.ok());
  const SearchCounters& c = r->counters;
  EXPECT_EQ(c.iterators, 2);
  EXPECT_GT(c.pops, 0);
  EXPECT_GT(c.ntds_created, 0);
  EXPECT_GT(c.nodes_visited, 0);
  EXPECT_GT(c.candidates, 0);
  EXPECT_EQ(c.results, static_cast<int64_t>(r->results.size()));
  EXPECT_GT(c.avg_ntds_per_node, 0.0);
}

TEST(SearchEngineTest, DurationIndexKindsAgree) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  const Query q = MustParse("mary, john rank by descending order of duration");
  std::set<std::string> expected;
  for (const auto kind :
       {temporal::NtdIndexKind::kNaive, temporal::NtdIndexKind::kRowMajor,
        temporal::NtdIndexKind::kColumnMajor}) {
    SearchOptions options = Exhaustive();
    options.duration_index = kind;
    auto r = engine.Search(q, options);
    ASSERT_TRUE(r.ok());
    std::set<std::string> sigs;
    for (const auto& t : r->results) sigs.insert(t.Signature());
    if (expected.empty()) {
      expected = sigs;
      EXPECT_FALSE(expected.empty());
    } else {
      EXPECT_EQ(sigs, expected);
    }
  }
}

}  // namespace
}  // namespace tgks::search
