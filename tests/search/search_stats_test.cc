// Regression tests: SearchResponse::stats is populated on EVERY stop path
// (exhausted, bound, max_pops, deadline, cancelled) and stays consistent
// with the paper counters; the batch executor aggregates per-query stats.
//
// Positivity assertions are guarded by obs::StatsCompiledOut() so the suite
// also passes under -DTGKS_NO_STATS=ON, where it instead pins the contract
// that every stats field stays zero.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/query_executor.h"
#include "graph/graph_builder.h"
#include "graph/inverted_index.h"
#include "obs/query_trace.h"
#include "obs/search_stats.h"
#include "search/query_parser.h"
#include "search/search_engine.h"
#include "testutil/paper_graphs.h"

namespace tgks::search {
namespace {

using graph::GraphBuilder;
using graph::InvertedIndex;
using graph::NodeId;
using graph::TemporalGraph;
using temporal::IntervalSet;

Query MustParse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << text << ": " << q.status();
  return std::move(q).value();
}

/// Invariants every populated stats payload must satisfy, regardless of the
/// stop path: mirrors of the paper counters agree, phase micros reproduce
/// the stopwatch seconds, and nothing is negative.
void ExpectStatsConsistent(const SearchResponse& r) {
  const obs::SearchStats& s = r.stats;
  if (obs::StatsCompiledOut()) {
    EXPECT_EQ(s.pops, 0);
    EXPECT_EQ(s.ntds_created, 0);
    EXPECT_EQ(s.dedup_hits, 0);
    EXPECT_EQ(s.prunes, 0);
    EXPECT_EQ(s.edges_scanned, 0);
    EXPECT_EQ(s.interval_ops, 0);
    EXPECT_EQ(s.heap_high_water, 0);
    EXPECT_EQ(s.MicrosTotal(), 0);
    return;
  }
  EXPECT_EQ(s.pops, r.counters.pops);
  EXPECT_EQ(s.ntds_created, r.counters.ntds_created);
  EXPECT_EQ(s.dedup_hits, r.counters.useless_pops + r.counters.duplicates);
  EXPECT_GE(s.prunes, 0);
  EXPECT_GE(s.edges_scanned, 0);
  EXPECT_GE(s.interval_ops, 0);
  EXPECT_GE(s.heap_high_water, 0);
  EXPECT_EQ(s.micros_match, std::llround(r.counters.seconds_match * 1e6));
  EXPECT_EQ(s.micros_filter, std::llround(r.counters.seconds_filter * 1e6));
  EXPECT_EQ(s.micros_expand, std::llround(r.counters.seconds_expand * 1e6));
  EXPECT_EQ(s.micros_generate,
            std::llround(r.counters.seconds_generate * 1e6));
  EXPECT_EQ(s.MicrosTotal(), s.micros_match + s.micros_filter +
                                 s.micros_expand + s.micros_generate);
}

/// Dense fixture: a clique over `n` nodes, half labeled alpha and half
/// beta, everything valid everywhere. Exhaustive search over it is big
/// enough that a 1 ms deadline reliably fires mid-flight.
TemporalGraph MakeCliqueGraph(int n) {
  GraphBuilder b(4);
  const IntervalSet always{{0, 3}};
  for (int i = 0; i < n; ++i) {
    b.AddNode(i % 2 == 0 ? "alpha" : "beta", always);
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      b.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(j), always,
                1.0 + 0.001 * (i * n + j));
    }
  }
  return std::move(b.Build()).value();
}

TEST(SearchStatsTest, PopulatedOnExhaustedExit) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  SearchOptions options;
  options.k = 0;  // Run to exhaustion.
  auto r = engine.Search(MustParse("mary, john"), options);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->stop_reason, StopReason::kExhausted);
  ExpectStatsConsistent(*r);
  if (!obs::StatsCompiledOut()) {
    EXPECT_GT(r->stats.pops, 0);
    EXPECT_GT(r->stats.ntds_created, 0);
    EXPECT_GT(r->stats.edges_scanned, 0);
    EXPECT_GT(r->stats.interval_ops, 0);
    EXPECT_GE(r->stats.heap_high_water, 1);
  }
}

TEST(SearchStatsTest, PopulatedOnBoundExit) {
  const TemporalGraph g = MakeCliqueGraph(16);
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  SearchOptions options;
  options.k = 1;
  options.bound = UpperBoundKind::kEmpirical;  // Fastest stop.
  auto r = engine.Search(MustParse("alpha, beta"), options);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->stop_reason, StopReason::kBound);
  EXPECT_FALSE(r->truncated);
  ExpectStatsConsistent(*r);
  if (!obs::StatsCompiledOut()) {
    EXPECT_GT(r->stats.pops, 0);
    EXPECT_GE(r->stats.heap_high_water, 1);
  }
}

TEST(SearchStatsTest, PopulatedOnMaxPopsExit) {
  const TemporalGraph g = MakeCliqueGraph(16);
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  SearchOptions options;
  options.k = 0;
  options.max_pops = 5;
  auto r = engine.Search(MustParse("alpha, beta"), options);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->stop_reason, StopReason::kMaxPops);
  EXPECT_TRUE(r->truncated);
  EXPECT_EQ(r->counters.pops, 5);
  ExpectStatsConsistent(*r);
  if (!obs::StatsCompiledOut()) {
    EXPECT_EQ(r->stats.pops, 5);
  }
}

TEST(SearchStatsTest, PopulatedOnDeadlineExit) {
  // 48-node clique, k = 0: exhaustive generation takes far longer than
  // 1 ms, so the deadline fires at a pop boundary mid-search.
  const TemporalGraph g = MakeCliqueGraph(48);
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  SearchOptions options;
  options.k = 0;
  options.deadline_ms = 1;
  auto r = engine.Search(MustParse("alpha, beta"), options);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->stop_reason, StopReason::kDeadline);
  EXPECT_TRUE(r->deadline_exceeded);
  EXPECT_TRUE(r->truncated);
  ExpectStatsConsistent(*r);
}

TEST(SearchStatsTest, PopulatedOnCancelledExit) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  std::atomic<bool> cancel{true};  // Stops at the first pop check.
  SearchOptions options;
  options.k = 0;
  options.cancel = &cancel;
  auto r = engine.Search(MustParse("mary, john"), options);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->stop_reason, StopReason::kCancelled);
  EXPECT_EQ(r->counters.pops, 0);
  ExpectStatsConsistent(*r);
  if (!obs::StatsCompiledOut()) {
    // Iterators were created before the cancel check, so their source NTDs
    // are queued: finalization saw real state, not an untouched struct.
    EXPECT_GT(r->stats.ntds_created, 0);
    EXPECT_GE(r->stats.heap_high_water, 1);
  }
}

TEST(SearchStatsTest, TraceRecordsIteratorEvents) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  obs::QueryTrace trace(/*capacity=*/4096);
  SearchOptions options;
  options.k = 0;
  options.trace = &trace;
  auto r = engine.Search(MustParse("mary, john"), options);
  ASSERT_TRUE(r.ok()) << r.status();
  if (obs::StatsCompiledOut()) {
    EXPECT_EQ(trace.total_recorded(), 0);
    return;
  }
  EXPECT_GT(trace.total_recorded(), 0);
  bool saw_pop = false, saw_expand = false, saw_keyword_hit = false;
  for (const obs::TraceEvent& ev : trace.Events()) {
    switch (ev.kind) {
      case obs::TraceEventKind::kPop:
        saw_pop = true;
        EXPECT_GE(ev.iter, 0);
        break;
      case obs::TraceEventKind::kExpand:
        saw_expand = true;
        break;
      case obs::TraceEventKind::kKeywordHit:
        saw_keyword_hit = true;
        EXPECT_EQ(ev.iter, -1);
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(saw_pop);
  EXPECT_TRUE(saw_expand);
  EXPECT_TRUE(saw_keyword_hit);  // The query has results, so keywords met.
  // One pop event per engine pop (the ring was big enough to keep all).
  ASSERT_EQ(trace.dropped(), 0);
}

TEST(SearchStatsTest, PredicatePruneCountsPrunedElements) {
  // Nodes/edges valid only late fail a PRECEDES prune; the prune counter
  // must see them.
  GraphBuilder b(10);
  const NodeId root = b.AddNode("root", IntervalSet{{0, 9}});
  const NodeId early = b.AddNode("alpha", IntervalSet{{0, 4}});
  const NodeId late = b.AddNode("alpha", IntervalSet{{8, 9}});
  b.AddEdge(early, root, IntervalSet{{0, 4}}, 1.0);
  b.AddEdge(late, root, IntervalSet{{8, 9}}, 1.0);
  b.AddEdge(root, early, IntervalSet{{0, 4}}, 1.0);
  b.AddEdge(root, late, IntervalSet{{8, 9}}, 1.0);
  const TemporalGraph g = std::move(b.Build()).value();
  const InvertedIndex index(g);
  const SearchEngine engine(g, &index);
  SearchOptions options;
  options.k = 0;
  auto r = engine.Search(MustParse("alpha, root result time precedes 3"),
                         options);
  ASSERT_TRUE(r.ok()) << r.status();
  ExpectStatsConsistent(*r);
  if (!obs::StatsCompiledOut()) {
    EXPECT_GT(r->stats.prunes, 0)
        << "expansion toward the late-only node must hit the prune";
  }
}

TEST(SearchStatsTest, ExecutorAggregatesBatchStats) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  const InvertedIndex index(g);
  exec::ExecutorOptions options;
  options.threads = 2;
  options.search.k = 0;
  exec::QueryExecutor executor(g, &index, options);
  const std::vector<Query> queries = {
      MustParse("mary, john"), MustParse("mary, bob"),
      MustParse("mary, john rank by descending order of duration")};
  const exec::BatchResponse batch = executor.RunQueries(queries);
  ASSERT_EQ(batch.completed, 3);
  int64_t pops = 0, micros = 0, high_water = 0;
  for (const auto& r : batch.responses) {
    ASSERT_TRUE(r.ok());
    pops += r->stats.pops;
    micros += r->stats.MicrosTotal();
    high_water = std::max(high_water, r->stats.heap_high_water);
  }
  EXPECT_EQ(batch.stats.pops, pops);
  EXPECT_EQ(batch.stats.MicrosTotal(), micros);
  EXPECT_EQ(batch.stats.heap_high_water, high_water);
  if (!obs::StatsCompiledOut()) {
    EXPECT_GT(batch.stats.pops, 0);
    EXPECT_EQ(batch.stats.pops, batch.totals.pops);
  }
}

}  // namespace
}  // namespace tgks::search
