// Differential oracle for Theorem 3.2 (snapshot reducibility).
//
// The theorem: the temporal best path iterator's merged output equals
// running (ranking-appropriate) Dijkstra on every snapshot and merging
// duplicate paths. This suite checks the relevance instantiation — where
// the per-snapshot oracle is plain shortest-path Dijkstra — exhaustively on
// >= 50 seeded random graphs:
//
//   1. Per (node, instant): the minimum distance over popped NTDs whose
//      time-set contains the instant equals the snapshot Dijkstra distance;
//      both absent means unreachable at that instant.
//   2. Per node: the union of popped NTD time-sets equals the exact set of
//      instants at which snapshot Dijkstra reaches the node.
//   3. Per popped NTD: its parent-chain path is valid throughout its
//      time-set, and the path's weight sum reproduces its distance.
//
// Integer-valued weights keep every distance an exact double, so all
// comparisons are == (no epsilon).

#include <algorithm>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "baseline/dijkstra_iterator.h"
#include "common/random.h"
#include "graph/graph_builder.h"
#include "search/best_path_iterator.h"

namespace tgks {
namespace {

using graph::EdgeId;
using graph::GraphBuilder;
using graph::NodeId;
using graph::TemporalGraph;
using temporal::IntervalSet;
using temporal::TimePoint;

/// Random graph with integer node/edge weights (exact double arithmetic).
TemporalGraph RandomIntegerGraph(Rng* rng, int num_nodes, int num_edges,
                                 TimePoint horizon) {
  while (true) {
    GraphBuilder b(horizon, graph::ValidityPolicy::kClamp);
    for (int i = 0; i < num_nodes; ++i) {
      const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
      const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
      b.AddNode("n" + std::to_string(i),
                IntervalSet{{std::min(a, c), std::max(a, c)}},
                static_cast<double>(rng->Uniform(4)));
    }
    int added = 0;
    for (int i = 0; i < num_edges * 3 && added < num_edges; ++i) {
      const NodeId u = static_cast<NodeId>(rng->Uniform(num_nodes));
      const NodeId v = static_cast<NodeId>(rng->Uniform(num_nodes));
      if (u == v) continue;
      const double w = static_cast<double>(1 + rng->Uniform(4));
      const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
      const TimePoint c = static_cast<TimePoint>(rng->Uniform(horizon));
      b.AddEdge(u, v, IntervalSet{{std::min(a, c), std::max(a, c)}}, w);
      ++added;
    }
    auto g = b.Build();
    if (g.ok()) return std::move(g).value();
    // Clamp policy rejects never-valid edges; resample.
  }
}

/// Weight of the forward path encoded by `edges` ending at `source`,
/// starting from `leaf`: every node on the path plus every edge.
double PathWeight(const TemporalGraph& g, NodeId leaf,
                  const std::vector<EdgeId>& edges) {
  double total = g.node(leaf).weight;
  NodeId cur = leaf;
  for (const EdgeId e : edges) {
    const graph::Edge& edge = g.edge(e);
    EXPECT_EQ(edge.src, cur) << "path edges out of order";
    total += edge.weight + g.node(edge.dst).weight;
    cur = edge.dst;
  }
  return total;
}

void CheckSnapshotReducibility(const TemporalGraph& g, NodeId source,
                               const std::string& context) {
  search::BestPathIterator::Options options;  // Pure relevance ranking.
  search::BestPathIterator iter(g, source, options);
  while (iter.Next() != search::kInvalidNtd) {
  }

  // Oracle: exhaustive per-snapshot Dijkstra from the same source.
  std::vector<baseline::DijkstraIterator> snapshots;
  snapshots.reserve(static_cast<size_t>(g.timeline_length()));
  for (TimePoint t = 0; t < g.timeline_length(); ++t) {
    snapshots.emplace_back(g, source, t);
    while (snapshots.back().Next() != graph::kInvalidNode) {
    }
  }

  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    IntervalSet covered;  // Union of popped NTD time-sets at n.
    for (const search::NtdId id : iter.PoppedAt(n)) {
      const search::Ntd& ntd = iter.ntd(id);
      ASSERT_EQ(ntd.node, n);
      ASSERT_FALSE(ntd.time.IsEmpty()) << context;
      covered = covered.Union(ntd.time);

      // Check 3: the parent-chain path is valid throughout ntd.time and
      // reproduces the distance exactly.
      const std::vector<EdgeId> path = iter.PathEdges(id);
      EXPECT_TRUE(g.node(n).validity.Subsumes(ntd.time)) << context;
      for (const EdgeId e : path) {
        EXPECT_TRUE(g.edge(e).validity.Subsumes(ntd.time))
            << context << " node " << n << ": edge " << e
            << " not valid over " << ntd.time.ToString();
      }
      EXPECT_EQ(PathWeight(g, n, path), ntd.dist)
          << context << " node " << n << " ntd " << id;
    }

    for (TimePoint t = 0; t < g.timeline_length(); ++t) {
      // Check 1: per-instant minimum distance equals snapshot Dijkstra.
      std::optional<double> temporal_best;
      for (const search::NtdId id : iter.PoppedAt(n)) {
        const search::Ntd& ntd = iter.ntd(id);
        if (!ntd.time.Contains(t)) continue;
        if (!temporal_best.has_value() || ntd.dist < *temporal_best) {
          temporal_best = ntd.dist;
        }
      }
      const std::optional<double> oracle =
          snapshots[static_cast<size_t>(t)].DistanceTo(n);
      ASSERT_EQ(temporal_best.has_value(), oracle.has_value())
          << context << " node " << n << " instant " << t
          << ": reachability disagrees (temporal "
          << (temporal_best.has_value() ? "reaches" : "misses")
          << ", snapshot Dijkstra "
          << (oracle.has_value() ? "reaches" : "misses") << ")";
      if (oracle.has_value()) {
        EXPECT_EQ(*temporal_best, *oracle)
            << context << " node " << n << " instant " << t;
      }

      // Check 2 (one direction; the other follows from check 1): every
      // instant claimed by a popped NTD is snapshot-reachable.
      if (covered.Contains(t)) {
        EXPECT_TRUE(oracle.has_value())
            << context << " node " << n << " instant " << t
            << ": popped NTD claims an unreachable instant";
      }
    }
  }
}

class SnapshotReducibilityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotReducibilityTest, MergedOutputEqualsPerSnapshotDijkstra) {
  Rng rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    const TimePoint horizon = 4 + static_cast<TimePoint>(rng.Uniform(5));
    const int num_nodes = 8 + static_cast<int>(rng.Uniform(8));
    const int num_edges = 2 * num_nodes + static_cast<int>(rng.Uniform(10));
    const TemporalGraph g =
        RandomIntegerGraph(&rng, num_nodes, num_edges, horizon);
    const NodeId source = static_cast<NodeId>(rng.Uniform(
        static_cast<uint64_t>(g.num_nodes())));
    const std::string context = "seed " + std::to_string(GetParam()) +
                                " round " + std::to_string(round) +
                                " source " + std::to_string(source);
    CheckSnapshotReducibility(g, source, context);
  }
}

// 10 seeds x 6 rounds = 60 random graphs.
INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotReducibilityTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99,
                                           110));

// A dense graph with every element valid everywhere must reduce to ONE
// snapshot's Dijkstra repeated: a direct sanity anchor for the harness.
TEST(SnapshotReducibilityAnchorTest, AllValidGraphMatchesEveryInstant) {
  Rng rng(4242);
  GraphBuilder b(5, graph::ValidityPolicy::kClamp);
  for (int i = 0; i < 10; ++i) {
    b.AddNode("n" + std::to_string(i), IntervalSet{{0, 4}},
              static_cast<double>(rng.Uniform(3)));
  }
  for (int i = 0; i < 24; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(10));
    const NodeId v = static_cast<NodeId>(rng.Uniform(10));
    if (u == v) continue;
    b.AddEdge(u, v, IntervalSet{{0, 4}},
              static_cast<double>(1 + rng.Uniform(3)));
  }
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  CheckSnapshotReducibility(*g, /*source=*/0, "all-valid anchor");
}

}  // namespace
}  // namespace tgks
