// Regression tests for the §4.2 termination bounds under relevance ranking.
//
// The bounds live in relevance space (r = 1/weight) but the engine scores in
// negated-weight space (s = -weight). The transform is monotone but NOT
// affine, so the kAverage midpoint must be formed in relevance space and
// mapped back: avg = -(2·m·d)/(m+1), NOT the negated-weight midpoint
// -(d·(m+1))/2. The graph below distinguishes the two: the wrong (too-loose)
// midpoint stops one pop early and returns the second-best tree as top-1.

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "graph/inverted_index.h"
#include "search/query_parser.h"
#include "search/search_engine.h"

namespace tgks::search {
namespace {

using graph::GraphBuilder;
using graph::InvertedIndex;
using graph::NodeId;
using graph::TemporalGraph;
using temporal::IntervalSet;

struct BoundFixture {
  TemporalGraph graph;
  NodeId a, b, r1, r2;
};

// Two keyword matches A ("alpha") and B ("beta"), joined by two relay nodes:
//
//   A --2.2-- R1 --2.2-- B     tree T1, weight 4.4, found first
//   A --1.0-- R2 --3.2-- B     tree T2, weight 4.2, the true best
//
// Global best-first pops reach R1 from both keywords (distances 2.2/2.2)
// before R2 is reached from "beta" (distance 3.2), so T1 is emitted first.
// At the bound check after T1, d = -best_top = 3.2 and the kth best score
// is -4.4:
//   accurate  -3.2             -> continue (correct: T2 is still out there)
//   fixed avg -(2·2·3.2)/3 ≈ -4.267 -> continue, next pop emits T2
//   buggy avg -(3.2·2 + 3.2)/... = -4.8 -> stops, returns T1 as top-1
BoundFixture MakeBoundGraph() {
  GraphBuilder builder(8);
  BoundFixture f;
  const IntervalSet always{{0, 7}};
  f.a = builder.AddNode("alpha", always);
  f.b = builder.AddNode("beta", always);
  f.r1 = builder.AddNode("relay1", always);
  f.r2 = builder.AddNode("relay2", always);
  auto both = [&builder](NodeId u, NodeId v, const IntervalSet& when,
                         double weight) {
    builder.AddEdge(u, v, when, weight);
    builder.AddEdge(v, u, when, weight);
  };
  both(f.a, f.r1, always, 2.2);
  both(f.b, f.r1, always, 2.2);
  both(f.a, f.r2, always, 1.0);
  both(f.b, f.r2, always, 3.2);
  f.graph = std::move(builder.Build()).value();
  return f;
}

Query AlphaBeta() {
  auto q = ParseQuery("alpha, beta");
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).value();
}

bool UsesNode(const ResultTree& tree, NodeId node) {
  return std::binary_search(tree.nodes.begin(), tree.nodes.end(), node);
}

TEST(TerminationBoundTest, AccurateBoundFindsTrueBest) {
  const BoundFixture f = MakeBoundGraph();
  const InvertedIndex index(f.graph);
  const SearchEngine engine(f.graph, &index);
  SearchOptions options;
  options.k = 1;
  options.bound = UpperBoundKind::kAccurate;
  auto r = engine.Search(AlphaBeta(), options);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->results.size(), 1u);
  EXPECT_DOUBLE_EQ(r->results[0].total_weight, 4.2);
  EXPECT_TRUE(UsesNode(r->results[0], f.r2));
}

TEST(TerminationBoundTest, AverageBoundMidpointIsInRelevanceSpace) {
  // The regression: with the score-space midpoint this returns the weight-4.4
  // tree; the relevance-space midpoint keeps going one pop and finds 4.2.
  const BoundFixture f = MakeBoundGraph();
  const InvertedIndex index(f.graph);
  const SearchEngine engine(f.graph, &index);
  SearchOptions options;
  options.k = 1;
  options.bound = UpperBoundKind::kAverage;
  auto r = engine.Search(AlphaBeta(), options);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->results.size(), 1u);
  EXPECT_DOUBLE_EQ(r->results[0].total_weight, 4.2)
      << "kAverage stopped before the true best tree: the midpoint was "
         "formed in negated-weight space instead of relevance space";
  EXPECT_TRUE(UsesNode(r->results[0], f.r2));
  EXPECT_EQ(r->stop_reason, StopReason::kBound);
}

TEST(TerminationBoundTest, EmpiricalBoundStopsAtFirstKResults) {
  // Documented contract of the 1/(m·d) bound under global best-first
  // scheduling: W_k <= m·d_now always holds once k results exist, so the
  // empirical search stops at the first check after the kth result — here
  // with the (approximate) weight-4.4 tree instead of the true best.
  const BoundFixture f = MakeBoundGraph();
  const InvertedIndex index(f.graph);
  const SearchEngine engine(f.graph, &index);
  SearchOptions options;
  options.k = 1;
  options.bound = UpperBoundKind::kEmpirical;
  auto r = engine.Search(AlphaBeta(), options);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->results.size(), 1u);
  EXPECT_DOUBLE_EQ(r->results[0].total_weight, 4.4);
  EXPECT_TRUE(UsesNode(r->results[0], f.r1));
  EXPECT_EQ(r->stop_reason, StopReason::kBound);
}

// Adversarial graph for the guided termination tightening: a bicluster of
// four relay roots joins the "alpha"/"beta" matches with ascending weights,
// so the top-3 fills fast and cheap — but a second "alpha" match sits at
// the end of a chain of 0.1-weight fragments below a gate whose only route
// to "beta" costs 6. Every tree through the chain weighs >= 6 (its cone
// floor), yet its fragments are the cheapest NTDs on the frontier, so the
// untightened empirical search drains the whole chain before §4.2 can
// fire. Guided search caps the stranded iterator at -floor/m and the stop
// fires without touching it.
struct TightenFixture {
  TemporalGraph graph;
};

TightenFixture MakeTightenGraph() {
  GraphBuilder builder(8);
  const IntervalSet always{{0, 7}};
  const NodeId a1 = builder.AddNode("alpha", always);
  const NodeId b = builder.AddNode("beta", always);
  const NodeId a2 = builder.AddNode("alpha", always);  // stranded match
  for (int i = 1; i <= 4; ++i) {
    const NodeId relay = builder.AddNode("relay", always);
    builder.AddEdge(relay, a1, always, 0.5 * i);
    builder.AddEdge(relay, b, always, 0.5 * i);
  }
  const NodeId gate = builder.AddNode("gate", always);
  NodeId prev = gate;
  for (int i = 0; i < 6; ++i) {
    const NodeId link = builder.AddNode("link", always);
    builder.AddEdge(prev, link, always, 0.1);
    prev = link;
  }
  builder.AddEdge(prev, a2, always, 0.1);
  builder.AddEdge(gate, b, always, 6.0);
  return TightenFixture{std::move(builder.Build()).value()};
}

TEST(TerminationBoundTest, GuidedTightensEmpiricalStop) {
  const TightenFixture f = MakeTightenGraph();
  const InvertedIndex index(f.graph);
  const SearchEngine engine(f.graph, &index);
  SearchOptions options;
  options.k = 3;
  options.bound = UpperBoundKind::kEmpirical;

  auto baseline = engine.Search(AlphaBeta(), options);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_EQ(baseline->results.size(), 3u);
  EXPECT_EQ(baseline->stop_reason, StopReason::kBound);

  options.guided_search = true;
  auto guided = engine.Search(AlphaBeta(), options);
  ASSERT_TRUE(guided.ok()) << guided.status();

  // Identical trees in identical order...
  ASSERT_EQ(guided->results.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(guided->results[i].nodes, baseline->results[i].nodes) << i;
    EXPECT_DOUBLE_EQ(guided->results[i].total_weight,
                     baseline->results[i].total_weight)
        << i;
  }
  EXPECT_EQ(guided->stop_reason, StopReason::kBound);

  // ...with strictly fewer pops: the chain's seven fragments never pop.
  EXPECT_LT(guided->counters.pops, baseline->counters.pops)
      << "the cone-floor cap should defer the stranded chain past the stop";
  // The stop test fired while the stranded iterator sat capped in the
  // alpha heap, and the caps actually lowered priorities.
  EXPECT_GE(guided->counters.bound_tightenings, 1);
  EXPECT_GE(guided->counters.guided_reorders, 1);
}

TEST(TerminationBoundTest, GuidedAccurateBoundKeepsExactTopK) {
  // Under kAccurate the guided stop is provably exact: same fixture, the
  // guarantee rather than the savings is the contract under test.
  const TightenFixture f = MakeTightenGraph();
  const InvertedIndex index(f.graph);
  const SearchEngine engine(f.graph, &index);
  SearchOptions options;
  options.k = 3;
  options.bound = UpperBoundKind::kAccurate;

  auto baseline = engine.Search(AlphaBeta(), options);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  options.guided_search = true;
  auto guided = engine.Search(AlphaBeta(), options);
  ASSERT_TRUE(guided.ok()) << guided.status();

  ASSERT_EQ(guided->results.size(), baseline->results.size());
  for (size_t i = 0; i < guided->results.size(); ++i) {
    EXPECT_EQ(guided->results[i].nodes, baseline->results[i].nodes) << i;
    EXPECT_DOUBLE_EQ(guided->results[i].total_weight,
                     baseline->results[i].total_weight)
        << i;
  }
  EXPECT_LE(guided->counters.pops, baseline->counters.pops);
}

TEST(TerminationBoundTest, BoundTightnessOrdering) {
  // Looser bounds stop no later: pops(empirical) <= pops(average) <=
  // pops(accurate), and every variant actually terminates on the bound
  // (never exhaustion) on this graph.
  const BoundFixture f = MakeBoundGraph();
  const InvertedIndex index(f.graph);
  const SearchEngine engine(f.graph, &index);
  int64_t pops_empirical = 0, pops_average = 0, pops_accurate = 0;
  for (const auto [kind, pops] :
       {std::pair{UpperBoundKind::kEmpirical, &pops_empirical},
        std::pair{UpperBoundKind::kAverage, &pops_average},
        std::pair{UpperBoundKind::kAccurate, &pops_accurate}}) {
    SearchOptions options;
    options.k = 1;
    options.bound = kind;
    auto r = engine.Search(AlphaBeta(), options);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_EQ(r->results.size(), 1u);
    EXPECT_FALSE(r->exhausted);
    *pops = r->counters.pops;
  }
  EXPECT_LE(pops_empirical, pops_average);
  EXPECT_LE(pops_average, pops_accurate);
}

}  // namespace
}  // namespace tgks::search
