#include "search/time_range_path.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_builder.h"
#include "testutil/paper_graphs.h"

namespace tgks::search {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::TemporalGraph;
using temporal::Interval;
using temporal::IntervalSet;
using temporal::TimePoint;

TEST(TimeRangePathTest, ThroughoutRequiresContinuousValidity) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  // Mary -> John throughout [6,7]: the Ross chain is valid on all of it.
  auto path = ShortestPathInRange(g, ids.mary, ids.john, {6, 7},
                                  RangeSemantics::kThroughout);
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->weight, 3.0);
  EXPECT_TRUE(path->time.Subsumes(IntervalSet{{6, 7}}));
  // Throughout [4,7]: no chain survives the whole window.
  EXPECT_FALSE(ShortestPathInRange(g, ids.mary, ids.john, {4, 7},
                                   RangeSemantics::kThroughout)
                   .has_value());
}

TEST(TimeRangePathTest, SometimeAcceptsAnyOverlap) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  // Sometime within [4,7]: the Ross chain (weight 3) exists at t6-t7.
  auto path = ShortestPathInRange(g, ids.mary, ids.john, {4, 7},
                                  RangeSemantics::kSometime);
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->weight, 3.0);
  // Sometime within [4,4]: only the Mike chain (weight 4) exists.
  auto at4 = ShortestPathInRange(g, ids.mary, ids.john, {4, 4},
                                 RangeSemantics::kSometime);
  ASSERT_TRUE(at4.has_value());
  EXPECT_DOUBLE_EQ(at4->weight, 4.0);
  // Sometime within [0,1]: nothing connects them.
  EXPECT_FALSE(ShortestPathInRange(g, ids.mary, ids.john, {0, 1},
                                   RangeSemantics::kSometime)
                   .has_value());
}

TEST(TimeRangePathTest, PathEdgesRunForwardSourceToTarget) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  for (const auto semantics :
       {RangeSemantics::kThroughout, RangeSemantics::kSometime}) {
    auto path =
        ShortestPathInRange(g, ids.mary, ids.john, {6, 7}, semantics);
    ASSERT_TRUE(path.has_value());
    NodeId cur = ids.mary;
    for (const auto e : path->edges) {
      EXPECT_EQ(g.edge(e).src, cur);
      cur = g.edge(e).dst;
    }
    EXPECT_EQ(cur, ids.john);
  }
}

TEST(TimeRangePathTest, RejectsBadRanges) {
  const TemporalGraph g = testutil::MakeSocialNetworkGraph();
  EXPECT_FALSE(ShortestPathInRange(g, 0, 1, {5, 4}).has_value());
  EXPECT_FALSE(ShortestPathInRange(g, 0, 1, {-1, 2}).has_value());
  EXPECT_FALSE(ShortestPathInRange(g, 0, 1, {0, 99}).has_value());
}

TEST(TimeRangePathTest, SourceEqualsTarget) {
  testutil::SocialNetworkIds ids;
  const TemporalGraph g = testutil::MakeSocialNetworkGraph(&ids);
  auto path = ShortestPathInRange(g, ids.mary, ids.mary, {0, 0},
                                  RangeSemantics::kThroughout);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->edges.empty());
  EXPECT_DOUBLE_EQ(path->weight, 0.0);
}

// Property: on single-instant ranges the two semantics agree with each
// other and with the snapshot-restricted Dijkstra of the baseline layer.
TEST(TimeRangePathTest, SingleInstantSemanticsAgree) {
  Rng rng(808);
  for (int round = 0; round < 6; ++round) {
    GraphBuilder b(6, graph::ValidityPolicy::kClamp);
    for (int i = 0; i < 8; ++i) {
      const TimePoint a = static_cast<TimePoint>(rng.Uniform(6));
      const TimePoint c = static_cast<TimePoint>(rng.Uniform(6));
      b.AddNode("n" + std::to_string(i),
                IntervalSet{{std::min(a, c), std::max(a, c)}});
    }
    for (int i = 0; i < 20; ++i) {
      const NodeId u = static_cast<NodeId>(rng.Uniform(8));
      const NodeId v = static_cast<NodeId>(rng.Uniform(8));
      if (u == v) continue;
      const TimePoint a = static_cast<TimePoint>(rng.Uniform(6));
      const TimePoint c = static_cast<TimePoint>(rng.Uniform(6));
      b.AddEdge(u, v, IntervalSet{{std::min(a, c), std::max(a, c)}});
    }
    auto built = b.Build();
    if (!built.ok()) continue;
    const TemporalGraph& g = *built;
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      for (NodeId t = 0; t < g.num_nodes(); ++t) {
        for (TimePoint instant = 0; instant < 6; ++instant) {
          const auto a = ShortestPathInRange(g, s, t, {instant, instant},
                                             RangeSemantics::kThroughout);
          const auto c = ShortestPathInRange(g, s, t, {instant, instant},
                                             RangeSemantics::kSometime);
          ASSERT_EQ(a.has_value(), c.has_value())
              << s << "->" << t << " @" << instant;
          if (a.has_value()) {
            EXPECT_DOUBLE_EQ(a->weight, c->weight)
                << s << "->" << t << " @" << instant;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace tgks::search
