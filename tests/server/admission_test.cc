// AdmissionController: the load-shedding contract — bounded queue depth,
// bounded inflight bytes with the single-large-request exception, and
// refuse-everything during shutdown.

#include "server/admission.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace tgks::server {
namespace {

// Every test uses its own registry so instrument registration never
// collides across tests (the global registry keys by name+labels).
class AdmissionTest : public ::testing::Test {
 protected:
  obs::MetricsRegistry registry_;
};

TEST_F(AdmissionTest, AdmitsUpToMaxQueueThenSheds) {
  AdmissionOptions options;
  options.max_queue = 2;
  AdmissionController admission(options, &registry_);
  ShedReason why = ShedReason::kNone;
  EXPECT_TRUE(admission.TryAdmit(10, &why));
  EXPECT_TRUE(admission.TryAdmit(10, &why));
  EXPECT_FALSE(admission.TryAdmit(10, &why));
  EXPECT_EQ(why, ShedReason::kQueueFull);
  EXPECT_EQ(admission.depth(), 2);
  EXPECT_EQ(admission.shed_total(), 1);

  admission.Release(10);
  EXPECT_TRUE(admission.TryAdmit(10, &why));
}

TEST_F(AdmissionTest, ShedsWhenBytesWouldOverflow) {
  AdmissionOptions options;
  options.max_queue = 10;
  options.max_inflight_bytes = 100;
  AdmissionController admission(options, &registry_);
  ShedReason why = ShedReason::kNone;
  EXPECT_TRUE(admission.TryAdmit(80, &why));
  EXPECT_FALSE(admission.TryAdmit(30, &why));  // 80 + 30 > 100.
  EXPECT_EQ(why, ShedReason::kBytesFull);
  EXPECT_TRUE(admission.TryAdmit(20, &why));  // Exactly at the cap is fine.
  EXPECT_EQ(admission.inflight_bytes(), 100);

  admission.Release(80);
  admission.Release(20);
  EXPECT_EQ(admission.inflight_bytes(), 0);
  EXPECT_EQ(admission.depth(), 0);
}

TEST_F(AdmissionTest, OversizedRequestAdmittedWhenIdle) {
  // A single request bigger than the aggregate cap must still be servable
  // when nothing else is in flight — the cap bounds aggregate memory, not
  // the largest legal request (the HTTP parser's body limit does that).
  AdmissionOptions options;
  options.max_inflight_bytes = 100;
  AdmissionController admission(options, &registry_);
  ShedReason why = ShedReason::kNone;
  EXPECT_TRUE(admission.TryAdmit(5000, &why));
  // But not when anything else is already admitted.
  EXPECT_FALSE(admission.TryAdmit(5000, &why));
  EXPECT_EQ(why, ShedReason::kBytesFull);
  admission.Release(5000);
  EXPECT_TRUE(admission.TryAdmit(5000, &why));
}

TEST_F(AdmissionTest, ShutdownRefusesEverything) {
  AdmissionController admission(AdmissionOptions{}, &registry_);
  ShedReason why = ShedReason::kNone;
  EXPECT_TRUE(admission.TryAdmit(1, &why));
  admission.BeginShutdown();
  EXPECT_FALSE(admission.TryAdmit(1, &why));
  EXPECT_EQ(why, ShedReason::kShuttingDown);
  // Releases still work while draining.
  admission.Release(1);
  EXPECT_EQ(admission.depth(), 0);
}

TEST_F(AdmissionTest, ShedReasonNames) {
  EXPECT_EQ(ShedReasonName(ShedReason::kQueueFull), "queue-full");
  EXPECT_EQ(ShedReasonName(ShedReason::kBytesFull), "bytes-full");
  EXPECT_EQ(ShedReasonName(ShedReason::kShuttingDown), "shutting-down");
}

}  // namespace
}  // namespace tgks::server
