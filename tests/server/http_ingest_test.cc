// Loopback end-to-end tests for live ingest over HTTP: POST /v1/ingest and
// /v1/compact routing, structured validation errors, admission limits for
// ingest bodies, snapshot-generation propagation, and result-cache
// invalidation across publishes (docs/ingest.md).

#include <atomic>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "cache/query_caches.h"
#include "cache/result_cache.h"
#include "exec/query_executor.h"
#include "graph/temporal_graph.h"
#include "ingest/live_graph.h"
#include "server/http_server.h"
#include "server/http_test_client.h"
#include "server/json_io.h"
#include "server/request_router.h"
#include "testutil/paper_graphs.h"

namespace tgks::server {
namespace {

using testing::ClientResponse;
using testing::FetchOnce;
using testing::GetRequest;
using testing::PostRequest;

struct LiveServerOptions {
  AdmissionOptions admission;
  int64_t max_ingest_bytes = 4 * 1024 * 1024;
  bool cache = false;  ///< Per-snapshot query caches + HTTP result cache.
};

// The full live serving stack: LiveGraph under the router, the executor
// reading the pinned base snapshot, and (optionally) the result cache wired
// to invalidate on every publish — the same topology tgks_cli --live builds.
class LiveTestServer {
 public:
  explicit LiveTestServer(graph::TemporalGraph graph,
                          LiveServerOptions opts = LiveServerOptions()) {
    ingest::CompactionPolicy policy;
    policy.background = false;  // Tests drive compaction via /v1/compact.
    live_ = std::make_unique<ingest::LiveGraph>(
        std::move(graph), policy,
        opts.cache ? std::optional(cache::QueryCachesOptions{})
                   : std::nullopt);
    base_ = live_->Acquire();
    if (opts.cache) {
      result_cache_ = std::make_unique<cache::ResultCache>(int64_t{8} << 20);
      cache::ResultCache* rc = result_cache_.get();
      live_->set_on_publish([rc](uint64_t) { rc->InvalidateAll(); });
    }
    exec::ExecutorOptions exec_options;
    exec_options.threads = 2;
    exec_options.search.k = 10;
    exec_options.search.extra_cancel = &shutdown_cancel_;
    executor_ = std::make_unique<exec::QueryExecutor>(
        *base_->graph, base_->index.get(), exec_options);
    admission_ = std::make_unique<AdmissionController>(opts.admission);
    RouterContext context;
    context.graph = base_->graph.get();
    context.executor = executor_.get();
    context.admission = admission_.get();
    context.draining = &draining_;
    context.default_k = 10;
    context.dataset_name = "live-test";
    context.result_cache = result_cache_.get();
    context.live = live_.get();
    context.max_ingest_bytes = opts.max_ingest_bytes;
    router_ = std::make_unique<RequestRouter>(context);
    HttpServerOptions server_options;
    server_options.port = 0;
    server_options.draining_flag = &draining_;
    server_options.shutdown_cancel = &shutdown_cancel_;
    server_ = std::make_unique<HttpServer>(router_.get(), admission_.get(),
                                           server_options);
    const Status status = server_->Start();
    EXPECT_TRUE(status.ok()) << status;
  }

  ~LiveTestServer() { server_->Shutdown(); }

  int port() const { return server_->port(); }
  ingest::LiveGraph* live() { return live_.get(); }
  AdmissionController* admission() { return admission_.get(); }

 private:
  std::unique_ptr<ingest::LiveGraph> live_;
  ingest::GraphSnapshotHandle base_;  // Keeps the executor's refs alive.
  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdown_cancel_{false};
  std::unique_ptr<cache::ResultCache> result_cache_;
  std::unique_ptr<exec::QueryExecutor> executor_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<RequestRouter> router_;
  std::unique_ptr<HttpServer> server_;
};

Result<JsonValue> ParseBody(const ClientResponse& response) {
  return JsonValue::Parse(response.body);
}

constexpr char kFreshBatch[] =
    R"({"nodes": [{"label": "zulu fresh", "weight": 1.0}],
        "edges": [{"src": 0, "dst_new": 0}]})";

TEST(HttpIngestTest, IngestThenSearchSeesTheNewData) {
  LiveTestServer ts(testutil::MakeSocialNetworkGraph());

  // Before the publish the keyword matches nothing.
  ClientResponse before;
  ASSERT_EQ(FetchOnce(ts.port(),
                      PostRequest("/v1/search", R"({"query":"fresh"})"),
                      &before),
            200);
  auto body = ParseBody(before);
  ASSERT_TRUE(body.ok()) << before.body;
  EXPECT_EQ(body->Find("result_count")->AsInt(), 0);
  const std::string* generation = before.FindHeader("x-snapshot-generation");
  ASSERT_NE(generation, nullptr);
  EXPECT_EQ(*generation, "0");

  ClientResponse ingest;
  ASSERT_EQ(
      FetchOnce(ts.port(), PostRequest("/v1/ingest", kFreshBatch), &ingest),
      200);
  body = ParseBody(ingest);
  ASSERT_TRUE(body.ok()) << ingest.body;
  EXPECT_EQ(body->Find("status")->AsString(), "ok");
  EXPECT_EQ(body->Find("generation")->AsInt(), 1);
  EXPECT_EQ(body->Find("nodes_added")->AsInt(), 1);
  EXPECT_EQ(body->Find("edges_added")->AsInt(), 1);
  EXPECT_GT(body->Find("delta_bytes")->AsInt(), 0);
  generation = ingest.FindHeader("x-snapshot-generation");
  ASSERT_NE(generation, nullptr);
  EXPECT_EQ(*generation, "1");

  // A post-publish query is admitted against the new snapshot and finds
  // the ingested node — and its generation header says so.
  ClientResponse after;
  ASSERT_EQ(FetchOnce(ts.port(),
                      PostRequest("/v1/search", R"({"query":"fresh"})"),
                      &after),
            200);
  body = ParseBody(after);
  ASSERT_TRUE(body.ok()) << after.body;
  EXPECT_EQ(body->Find("result_count")->AsInt(), 1);
  generation = after.FindHeader("x-snapshot-generation");
  ASSERT_NE(generation, nullptr);
  EXPECT_EQ(*generation, "1");

  // Multi-keyword: the delta node joins trees with base nodes through the
  // ingested edge.
  ClientResponse joined;
  ASSERT_EQ(FetchOnce(ts.port(),
                      PostRequest("/v1/search", R"({"query":"Mary, fresh"})"),
                      &joined),
            200);
  body = ParseBody(joined);
  ASSERT_TRUE(body.ok()) << joined.body;
  EXPECT_GT(body->Find("result_count")->AsInt(), 0);
}

TEST(HttpIngestTest, StructuredValidationErrors) {
  LiveTestServer ts(testutil::MakeSocialNetworkGraph());
  ClientResponse r;

  // Parse-level: wrong label type → bad-shape with array position.
  ASSERT_EQ(FetchOnce(ts.port(),
                      PostRequest("/v1/ingest", R"({"nodes":[{"label":5}]})"),
                      &r),
            400);
  auto body = ParseBody(r);
  ASSERT_TRUE(body.ok()) << r.body;
  const JsonValue* error = body->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("type")->AsString(), "ingest-validate");
  EXPECT_EQ(error->Find("code")->AsString(), "bad-shape");
  EXPECT_EQ(error->Find("field")->AsString(), "nodes");
  EXPECT_EQ(error->Find("offset")->AsInt(), 0);

  // Apply-level: an edge outside its endpoints' lifetimes. Mary is valid
  // [0,7]; an explicit empty-after-clip validity can never exist.
  ASSERT_EQ(
      FetchOnce(
          ts.port(),
          PostRequest(
              "/v1/ingest",
              R"({"nodes":[{"label":"ghost","validity":[[0,2]]}],
                  "edges":[{"src":0,"dst_new":0,"validity":[[5,7]]}]})"),
          &r),
      400);
  body = ParseBody(r);
  ASSERT_TRUE(body.ok()) << r.body;
  error = body->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("type")->AsString(), "ingest-validate");
  EXPECT_EQ(error->Find("code")->AsString(), "edge-never-valid");
  EXPECT_EQ(error->Find("field")->AsString(), "edges");

  // Malformed JSON and empty batches are rejected before any publish.
  ASSERT_EQ(FetchOnce(ts.port(), PostRequest("/v1/ingest", "{nope"), &r), 400);
  ASSERT_EQ(FetchOnce(ts.port(), PostRequest("/v1/ingest", "{}"), &r), 400);
  body = ParseBody(r);
  ASSERT_TRUE(body.ok()) << r.body;
  EXPECT_EQ(body->Find("error")->Find("code")->AsString(), "bad-shape");

  // Wrong method.
  ASSERT_EQ(FetchOnce(ts.port(), GetRequest("/v1/ingest"), &r), 405);
  ASSERT_EQ(FetchOnce(ts.port(), GetRequest("/v1/compact"), &r), 405);

  // Nothing above published: the graph is untouched.
  EXPECT_EQ(ts.live()->generation(), 0u);
}

TEST(HttpIngestTest, OversizedBatchIsRejectedWith413) {
  LiveServerOptions opts;
  opts.max_ingest_bytes = 64;
  LiveTestServer ts(testutil::MakeSocialNetworkGraph(), opts);
  const std::string big =
      R"({"nodes":[{"label":")" + std::string(200, 'x') + R"("}]})";
  ClientResponse r;
  ASSERT_EQ(FetchOnce(ts.port(), PostRequest("/v1/ingest", big), &r), 413);
  auto body = ParseBody(r);
  ASSERT_TRUE(body.ok()) << r.body;
  EXPECT_EQ(body->Find("error")->Find("type")->AsString(), "too-large");
  EXPECT_EQ(body->Find("error")->Find("max_bytes")->AsInt(), 64);
  EXPECT_EQ(ts.live()->generation(), 0u);
}

TEST(HttpIngestTest, IngestBytesCountAgainstTheSharedAdmissionBudget) {
  LiveServerOptions opts;
  opts.admission.max_inflight_bytes = 16;
  LiveTestServer ts(testutil::MakeSocialNetworkGraph(), opts);

  // The controller always serves one request on an idle server, so pin the
  // budget with a fake inflight search first; the ingest body then lands on
  // a busy server whose byte budget is spent and is shed, proving ingest
  // bytes draw from the same --max-inflight-bytes pool as searches.
  ASSERT_TRUE(ts.admission()->TryAdmit(16, nullptr));
  ClientResponse r;
  ASSERT_EQ(FetchOnce(ts.port(), PostRequest("/v1/ingest", kFreshBatch), &r),
            429);
  const std::string* retry_after = r.FindHeader("retry-after");
  ASSERT_NE(retry_after, nullptr);
  EXPECT_EQ(*retry_after, "1");
  EXPECT_EQ(ts.live()->generation(), 0u);

  // Releasing the pinned bytes lets the same batch through.
  ts.admission()->Release(16);
  ASSERT_EQ(FetchOnce(ts.port(), PostRequest("/v1/ingest", kFreshBatch), &r),
            200);
  EXPECT_EQ(ts.live()->generation(), 1u);
}

TEST(HttpIngestTest, CompactEndpointFoldsTheDelta) {
  LiveTestServer ts(testutil::MakeSocialNetworkGraph());
  ClientResponse r;
  ASSERT_EQ(FetchOnce(ts.port(), PostRequest("/v1/ingest", kFreshBatch), &r),
            200);

  ASSERT_EQ(FetchOnce(ts.port(), PostRequest("/v1/compact", ""), &r), 200);
  auto body = ParseBody(r);
  ASSERT_TRUE(body.ok()) << r.body;
  EXPECT_EQ(body->Find("status")->AsString(), "ok");
  EXPECT_EQ(body->Find("generation")->AsInt(), 2);
  EXPECT_EQ(body->Find("runs")->AsInt(), 1);
  EXPECT_EQ(body->Find("manual_runs")->AsInt(), 1);
  EXPECT_EQ(body->Find("nodes_folded")->AsInt(), 1);
  EXPECT_EQ(body->Find("edges_folded")->AsInt(), 1);
  EXPECT_EQ(body->Find("delta_bytes")->AsInt(), 0);

  // The folded graph still answers for the ingested data (rebuilt index).
  ClientResponse search;
  ASSERT_EQ(FetchOnce(ts.port(),
                      PostRequest("/v1/search", R"({"query":"fresh"})"),
                      &search),
            200);
  body = ParseBody(search);
  ASSERT_TRUE(body.ok()) << search.body;
  EXPECT_EQ(body->Find("result_count")->AsInt(), 1);
  const std::string* generation = search.FindHeader("x-snapshot-generation");
  ASSERT_NE(generation, nullptr);
  EXPECT_EQ(*generation, "2");

  // Compacting an already-folded graph is a no-op at the same generation.
  ASSERT_EQ(FetchOnce(ts.port(), PostRequest("/v1/compact", ""), &r), 200);
  body = ParseBody(r);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->Find("generation")->AsInt(), 2);
  EXPECT_EQ(body->Find("runs")->AsInt(), 1);
}

TEST(HttpIngestTest, PublishInvalidatesTheResultCache) {
  LiveServerOptions opts;
  opts.cache = true;
  LiveTestServer ts(testutil::MakeSocialNetworkGraph(), opts);
  const std::string request =
      PostRequest("/v1/search", R"({"query":"Mary, John","k":3})");

  ClientResponse miss;
  ASSERT_EQ(FetchOnce(ts.port(), request, &miss), 200);
  ASSERT_NE(miss.FindHeader("x-cache"), nullptr);
  EXPECT_EQ(*miss.FindHeader("x-cache"), "miss");
  ClientResponse hit;
  ASSERT_EQ(FetchOnce(ts.port(), request, &hit), 200);
  EXPECT_EQ(*hit.FindHeader("x-cache"), "hit");
  EXPECT_EQ(miss.body, hit.body);

  // Publish: a post-publish request must never be served a pre-publish
  // answer — the generation-scoped key plus InvalidateAll guarantee a miss.
  ClientResponse ingest;
  ASSERT_EQ(
      FetchOnce(ts.port(),
                PostRequest("/v1/ingest",
                            R"({"nodes":[{"label":"mary john","weight":0.5}]})"),
                &ingest),
      200);

  ClientResponse cold;
  ASSERT_EQ(FetchOnce(ts.port(), request, &cold), 200);
  EXPECT_EQ(*cold.FindHeader("x-cache"), "miss");
  EXPECT_EQ(*cold.FindHeader("x-snapshot-generation"), "1");
  // The fresh answer reflects the new graph: the ingested node covers both
  // keywords by itself at weight 0.5, a new best tree the cached top-3
  // cannot contain.
  EXPECT_NE(cold.body, miss.body);

  // And the post-publish answer is itself cacheable.
  ClientResponse warm;
  ASSERT_EQ(FetchOnce(ts.port(), request, &warm), 200);
  EXPECT_EQ(*warm.FindHeader("x-cache"), "hit");
  EXPECT_EQ(warm.body, cold.body);
}

TEST(HttpIngestTest, VarzReportsTheLiveSection) {
  LiveTestServer ts(testutil::MakeSocialNetworkGraph());
  ClientResponse r;
  ASSERT_EQ(FetchOnce(ts.port(), PostRequest("/v1/ingest", kFreshBatch), &r),
            200);
  ASSERT_EQ(FetchOnce(ts.port(), GetRequest("/varz"), &r), 200);
  auto varz = ParseBody(r);
  ASSERT_TRUE(varz.ok()) << r.body;
  EXPECT_TRUE(varz->Find("live")->AsBool());
  EXPECT_EQ(varz->Find("snapshot_generation")->AsInt(), 1);
  EXPECT_EQ(varz->Find("ingest_batches")->AsInt(), 1);
  EXPECT_EQ(varz->Find("ingest_nodes")->AsInt(), 1);
  EXPECT_EQ(varz->Find("ingest_edges")->AsInt(), 1);
  EXPECT_GT(varz->Find("delta_bytes")->AsInt(), 0);
  EXPECT_EQ(varz->Find("compactions")->AsInt(), 0);
  // The live node/edge totals track the snapshot, not the boot-time base.
  EXPECT_EQ(varz->Find("snapshot_nodes")->AsInt(), 8);
}

}  // namespace
}  // namespace tgks::server
