// HttpRequestParser and response serialization: incremental feeding,
// pipelining, keep-alive semantics, and the error-status mapping for
// malformed or over-limit requests.

#include "server/connection.h"

#include <string>

#include <gtest/gtest.h>

namespace tgks::server {
namespace {

using State = HttpRequestParser::State;

// Feeds the whole string, asserting everything the request needs was
// consumed, and returns the final state.
State FeedAll(HttpRequestParser* parser, const std::string& bytes,
              size_t* leftover = nullptr) {
  size_t consumed = 0;
  const State state = parser->Feed(bytes, &consumed);
  if (leftover != nullptr) *leftover = bytes.size() - consumed;
  return state;
}

TEST(HttpParserTest, SimpleGet) {
  HttpRequestParser parser;
  const State state =
      FeedAll(&parser, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(state, State::kDone);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_EQ(parser.request().version_minor, 1);
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(HttpParserTest, HeadersLowercasedAndTrimmed) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser,
                    "GET / HTTP/1.1\r\nX-Custom-Header:   spaced value  "
                    "\r\nHost: h\r\n\r\n"),
            State::kDone);
  const std::string* value = parser.request().FindHeader("x-custom-header");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, "spaced value");
  EXPECT_NE(parser.request().FindHeader("host"), nullptr);
  EXPECT_EQ(parser.request().FindHeader("absent"), nullptr);
}

TEST(HttpParserTest, PostWithBody) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser,
                    "POST /v1/search HTTP/1.1\r\ncontent-length: 5\r\n\r\n"
                    "hello"),
            State::kDone);
  EXPECT_EQ(parser.request().body, "hello");
}

TEST(HttpParserTest, ByteAtATimeFeeding) {
  const std::string raw =
      "POST /v1/search HTTP/1.1\r\ncontent-length: 4\r\n\r\nbody";
  HttpRequestParser parser;
  State state = State::kHead;
  for (const char c : raw) {
    size_t consumed = 0;
    state = parser.Feed(std::string_view(&c, 1), &consumed);
    ASSERT_NE(state, State::kError);
    ASSERT_EQ(consumed, 1u);
  }
  ASSERT_EQ(state, State::kDone);
  EXPECT_EQ(parser.request().body, "body");
}

TEST(HttpParserTest, PipelinedRequestsLeaveLeftover) {
  const std::string first = "GET /a HTTP/1.1\r\n\r\n";
  const std::string second = "GET /b HTTP/1.1\r\n\r\n";
  HttpRequestParser parser;
  size_t consumed = 0;
  ASSERT_EQ(parser.Feed(first + second, &consumed), State::kDone);
  EXPECT_EQ(consumed, first.size());
  EXPECT_EQ(parser.request().target, "/a");

  parser.Reset();
  ASSERT_EQ(parser.Feed(second, &consumed), State::kDone);
  EXPECT_EQ(parser.request().target, "/b");
}

TEST(HttpParserTest, BareLfTerminatorAccepted) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "GET /x HTTP/1.1\nhost: h\n\n"), State::kDone);
  EXPECT_EQ(parser.request().target, "/x");
}

TEST(HttpParserTest, KeepAliveDefaults) {
  {
    HttpRequestParser p;  // 1.1 defaults to keep-alive.
    ASSERT_EQ(FeedAll(&p, "GET / HTTP/1.1\r\n\r\n"), State::kDone);
    EXPECT_TRUE(p.request().keep_alive());
  }
  {
    HttpRequestParser p;  // 1.1 + close.
    ASSERT_EQ(FeedAll(&p, "GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
              State::kDone);
    EXPECT_FALSE(p.request().keep_alive());
  }
  {
    HttpRequestParser p;  // 1.0 defaults to close.
    ASSERT_EQ(FeedAll(&p, "GET / HTTP/1.0\r\n\r\n"), State::kDone);
    EXPECT_FALSE(p.request().keep_alive());
  }
  {
    HttpRequestParser p;  // 1.0 + explicit keep-alive.
    ASSERT_EQ(
        FeedAll(&p, "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
        State::kDone);
    EXPECT_TRUE(p.request().keep_alive());
  }
  {
    HttpRequestParser p;  // Token matching inside a comma list.
    ASSERT_EQ(FeedAll(&p,
                      "GET / HTTP/1.1\r\nConnection: foo, Close\r\n\r\n"),
              State::kDone);
    EXPECT_FALSE(p.request().keep_alive());
  }
}

TEST(HttpParserTest, MalformedRequestLineIs400) {
  for (const char* raw :
       {"GARBAGE\r\n\r\n", "GET\r\n\r\n", "GET /x\r\n\r\n",
        "GET /x NOTHTTP/1.1\r\n\r\n"}) {
    HttpRequestParser parser;
    EXPECT_EQ(FeedAll(&parser, raw), State::kError) << raw;
    EXPECT_EQ(parser.error_status(), 400) << raw;
  }
}

TEST(HttpParserTest, BadContentLengthIs400) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser,
                    "POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, UnsupportedVersionIs505) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "GET / HTTP/2.0\r\n\r\n"), State::kError);
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(HttpParserTest, TransferEncodingIs501) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser,
                    "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParserTest, OversizedHeadIs431) {
  HttpRequestParser::Limits limits;
  limits.max_head_bytes = 64;
  HttpRequestParser parser(limits);
  const std::string raw =
      "GET / HTTP/1.1\r\nx-pad: " + std::string(100, 'a') + "\r\n\r\n";
  ASSERT_EQ(FeedAll(&parser, raw), State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, OversizedBodyIs413) {
  HttpRequestParser::Limits limits;
  limits.max_body_bytes = 8;
  HttpRequestParser parser(limits);
  ASSERT_EQ(FeedAll(&parser,
                    "POST / HTTP/1.1\r\ncontent-length: 9\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, ResetClearsErrorState) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "GARBAGE\r\n\r\n"), State::kError);
  parser.Reset();
  ASSERT_EQ(FeedAll(&parser, "GET /ok HTTP/1.1\r\n\r\n"), State::kDone);
  EXPECT_EQ(parser.request().target, "/ok");
}

TEST(SerializeResponseTest, FramingAndConnectionHeader) {
  HttpResponse response;
  response.status = 200;
  response.body = "{\"x\":1}";
  const std::string keep = SerializeResponse(response, /*keep_alive=*/true);
  EXPECT_NE(keep.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_EQ(keep.substr(keep.size() - 7), "{\"x\":1}");

  const std::string close = SerializeResponse(response, /*keep_alive=*/false);
  EXPECT_NE(close.find("Connection: close\r\n"), std::string::npos);

  response.close_connection = true;
  const std::string forced = SerializeResponse(response, /*keep_alive=*/true);
  EXPECT_NE(forced.find("Connection: close\r\n"), std::string::npos);
}

TEST(SerializeResponseTest, ExtraHeadersAndReasonPhrases) {
  HttpResponse response;
  response.status = 429;
  response.extra_headers.push_back({"retry-after", "1"});
  const std::string raw = SerializeResponse(response, true);
  EXPECT_NE(raw.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(raw.find("retry-after: 1\r\n"), std::string::npos);

  EXPECT_EQ(StatusReasonPhrase(503), "Service Unavailable");
  EXPECT_EQ(StatusReasonPhrase(404), "Not Found");
  EXPECT_EQ(StatusReasonPhrase(999), "Unknown");
}

}  // namespace
}  // namespace tgks::server
