// Loopback end-to-end tests for the HTTP serving layer: real sockets, the
// real executor, and the full admission/deadline/shutdown story. Slow-query
// cases use the executor tests' chain-graph idiom (a long "left ... right"
// chain) so deadlines, shedding, and shutdown-cancel fire deterministically.

#include "server/http_server.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/query_executor.h"
#include "graph/graph_builder.h"
#include "graph/inverted_index.h"
#include "graph/temporal_graph.h"
#include "server/http_test_client.h"
#include "server/json_io.h"
#include "server/request_router.h"
#include "testutil/paper_graphs.h"

namespace tgks::server {
namespace {

using testing::ClientResponse;
using testing::FetchOnce;
using testing::GetRequest;
using testing::PostRequest;
using testing::TestClient;

// A long "left ... right" chain: expensive to search, so deadline /
// cancellation / saturation paths fire reliably (see query_executor_test).
graph::TemporalGraph MakeChainGraph(int n) {
  graph::GraphBuilder b(4);
  const temporal::IntervalSet always{{0, 3}};
  graph::NodeId prev = b.AddNode("left", always);
  for (int i = 0; i < n - 2; ++i) {
    const graph::NodeId mid = b.AddNode("mid", always);
    b.AddEdge(prev, mid, always);
    b.AddEdge(mid, prev, always);
    prev = mid;
  }
  const graph::NodeId tail = b.AddNode("right", always);
  b.AddEdge(prev, tail, always);
  b.AddEdge(tail, prev, always);
  return std::move(b.Build()).value();
}

struct TestServerOptions {
  int threads = 2;
  AdmissionOptions admission;
  int drain_timeout_ms = 2000;
  bool use_poll = false;
  int32_t default_k = 10;
  bool cache = false;  ///< Wire the full cache stack (docs/caching.md).
};

// Owns the whole serving stack over a given graph, bound to an ephemeral
// loopback port.
class TestServer {
 public:
  explicit TestServer(graph::TemporalGraph graph,
                      TestServerOptions opts = TestServerOptions())
      : graph_(std::move(graph)), index_(graph_) {
    exec::ExecutorOptions exec_options;
    exec_options.threads = opts.threads;
    exec_options.search.k = opts.default_k;
    exec_options.search.extra_cancel = &shutdown_cancel_;
    if (opts.cache) {
      query_caches_ = std::make_unique<cache::QueryCaches>();
      result_cache_ = std::make_unique<cache::ResultCache>(int64_t{8} << 20);
      exec_options.search.query_caches = query_caches_.get();
    }
    executor_ = std::make_unique<exec::QueryExecutor>(graph_, &index_,
                                                      exec_options);
    admission_ = std::make_unique<AdmissionController>(opts.admission);
    RouterContext context;
    context.graph = &graph_;
    context.executor = executor_.get();
    context.admission = admission_.get();
    context.draining = &draining_;
    context.default_k = opts.default_k;
    context.dataset_name = "test";
    context.query_caches = query_caches_.get();
    context.result_cache = result_cache_.get();
    router_ = std::make_unique<RequestRouter>(context);
    HttpServerOptions server_options;
    server_options.port = 0;
    server_options.use_poll = opts.use_poll;
    server_options.drain_timeout_ms = opts.drain_timeout_ms;
    server_options.draining_flag = &draining_;
    server_options.shutdown_cancel = &shutdown_cancel_;
    server_ = std::make_unique<HttpServer>(router_.get(), admission_.get(),
                                           server_options);
    const Status status = server_->Start();
    EXPECT_TRUE(status.ok()) << status;
  }

  ~TestServer() { server_->Shutdown(); }

  int port() const { return server_->port(); }
  HttpServer* server() { return server_.get(); }
  AdmissionController* admission() { return admission_.get(); }

 private:
  graph::TemporalGraph graph_;
  graph::InvertedIndex index_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdown_cancel_{false};
  std::unique_ptr<cache::QueryCaches> query_caches_;
  std::unique_ptr<cache::ResultCache> result_cache_;
  std::unique_ptr<exec::QueryExecutor> executor_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<RequestRouter> router_;
  std::unique_ptr<HttpServer> server_;
};

Result<JsonValue> ParseBody(const ClientResponse& response) {
  return JsonValue::Parse(response.body);
}

TEST(HttpServerTest, HealthzAndVarz) {
  TestServer ts(testutil::MakeSocialNetworkGraph());
  ClientResponse r;
  ASSERT_EQ(FetchOnce(ts.port(), GetRequest("/healthz"), &r), 200);
  EXPECT_EQ(r.body, "ok\n");

  ASSERT_EQ(FetchOnce(ts.port(), GetRequest("/varz"), &r), 200);
  auto varz = ParseBody(r);
  ASSERT_TRUE(varz.ok()) << r.body;
  EXPECT_EQ(varz->Find("dataset")->AsString(), "test");
  EXPECT_EQ(varz->Find("nodes")->AsInt(), 7);
  EXPECT_FALSE(varz->Find("draining")->AsBool());
  EXPECT_EQ(varz->Find("max_queue")->AsInt(), 64);
}

TEST(HttpServerTest, MetricsExposition) {
  TestServer ts(testutil::MakeSocialNetworkGraph());
  ClientResponse warmup;  // Ensure at least one request is counted.
  ASSERT_EQ(FetchOnce(ts.port(), GetRequest("/healthz"), &warmup), 200);

  ClientResponse r;
  ASSERT_EQ(FetchOnce(ts.port(), GetRequest("/metrics"), &r), 200);
  const std::string* content_type = r.FindHeader("content-type");
  ASSERT_NE(content_type, nullptr);
  EXPECT_EQ(*content_type, "text/plain; version=0.0.4; charset=utf-8");
#ifndef TGKS_NO_STATS
  EXPECT_NE(r.body.find("tgks_http_requests_total"), std::string::npos)
      << r.body.substr(0, 400);
#endif
}

TEST(HttpServerTest, SearchEndToEnd) {
  TestServer ts(testutil::MakeSocialNetworkGraph());
  ClientResponse r;
  ASSERT_EQ(FetchOnce(ts.port(),
                      PostRequest("/v1/search",
                                  R"({"query":"Mary, John","k":3})"),
                      &r),
            200);
  auto body = ParseBody(r);
  ASSERT_TRUE(body.ok()) << r.body;
  EXPECT_EQ(body->Find("status")->AsString(), "ok");
  // k=3 may stop at the termination bound before exhausting the space.
  const std::string stop = body->Find("stop_reason")->AsString();
  EXPECT_TRUE(stop == "exhausted" || stop == "bound") << stop;
  EXPECT_GT(body->Find("result_count")->AsInt(), 0);
  ASSERT_TRUE(body->Find("results")->is_array());
  const JsonValue& first = body->Find("results")->items()[0];
  EXPECT_TRUE(first.Find("root")->is_int());
  EXPECT_TRUE(first.Find("time")->is_array());
  // Stats are opt-in so default responses stay deterministic.
  EXPECT_EQ(body->Find("counters"), nullptr);
  EXPECT_EQ(body->Find("stats"), nullptr);
  EXPECT_EQ(body->Find("latency_ms"), nullptr);
}

TEST(HttpServerTest, SearchWithStatsIncludesCounters) {
  TestServer ts(testutil::MakeSocialNetworkGraph());
  ClientResponse r;
  ASSERT_EQ(FetchOnce(ts.port(),
                      PostRequest("/v1/search",
                                  R"({"query":"Mary, John","stats":true})"),
                      &r),
            200);
  auto body = ParseBody(r);
  ASSERT_TRUE(body.ok()) << r.body;
  ASSERT_NE(body->Find("counters"), nullptr) << r.body;
  EXPECT_GT(body->Find("counters")->Find("pops")->AsInt(), 0);
  EXPECT_NE(body->Find("latency_ms"), nullptr);
}

TEST(HttpServerTest, ExplicitMatchSetsBypassTheIndex) {
  testutil::SocialNetworkIds ids;
  TestServer ts(testutil::MakeSocialNetworkGraph(&ids));
  JsonWriter w;
  w.BeginObject();
  w.Key("query");
  w.String("Mary, John");
  w.Key("matches");
  w.BeginArray();
  w.BeginArray();
  w.Int(ids.mary);
  w.EndArray();
  w.BeginArray();
  w.Int(ids.john);
  w.EndArray();
  w.EndArray();
  w.EndObject();
  ClientResponse r;
  ASSERT_EQ(FetchOnce(ts.port(), PostRequest("/v1/search", w.Take()), &r),
            200);
  auto body = ParseBody(r);
  ASSERT_TRUE(body.ok());
  EXPECT_GT(body->Find("result_count")->AsInt(), 0);
}

TEST(HttpServerTest, ResultCacheMissThenHitBitIdentical) {
  TestServerOptions opts;
  opts.cache = true;
  TestServer ts(testutil::MakeSocialNetworkGraph(), opts);
  const std::string request =
      PostRequest("/v1/search", R"({"query":"Mary, John","k":3})");

  ClientResponse miss;
  ASSERT_EQ(FetchOnce(ts.port(), request, &miss), 200);
  const std::string* h = miss.FindHeader("x-cache");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(*h, "miss");

  ClientResponse hit;
  ASSERT_EQ(FetchOnce(ts.port(), request, &hit), 200);
  h = hit.FindHeader("x-cache");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(*h, "hit");
  EXPECT_EQ(miss.body, hit.body);  // Bit-identical, not just equivalent.
}

TEST(HttpServerTest, PerRequestCacheFalseBypassesTheCache) {
  TestServerOptions opts;
  opts.cache = true;
  TestServer ts(testutil::MakeSocialNetworkGraph(), opts);
  const std::string cached =
      PostRequest("/v1/search", R"({"query":"Mary, John","k":3})");
  const std::string uncached = PostRequest(
      "/v1/search", R"({"query":"Mary, John","k":3,"cache":false})");

  ClientResponse warm;
  ASSERT_EQ(FetchOnce(ts.port(), cached, &warm), 200);
  ClientResponse bypass;
  ASSERT_EQ(FetchOnce(ts.port(), uncached, &bypass), 200);
  EXPECT_EQ(bypass.FindHeader("x-cache"), nullptr);
  EXPECT_EQ(warm.body, bypass.body);  // Same answer, computed fresh.
}

TEST(HttpServerTest, StatsRequestsAreNeverCached) {
  TestServerOptions opts;
  opts.cache = true;
  TestServer ts(testutil::MakeSocialNetworkGraph(), opts);
  const std::string request =
      PostRequest("/v1/search", R"({"query":"Mary, John","stats":true})");
  ClientResponse first;
  ASSERT_EQ(FetchOnce(ts.port(), request, &first), 200);
  EXPECT_EQ(first.FindHeader("x-cache"), nullptr);
  ClientResponse second;
  ASSERT_EQ(FetchOnce(ts.port(), request, &second), 200);
  EXPECT_EQ(second.FindHeader("x-cache"), nullptr);
}

TEST(HttpServerTest, CacheInvalidateBumpsGenerationAndEmptiesCache) {
  TestServerOptions opts;
  opts.cache = true;
  TestServer ts(testutil::MakeSocialNetworkGraph(), opts);
  const std::string request =
      PostRequest("/v1/search", R"({"query":"Mary, John","k":3})");

  ClientResponse warm;
  ASSERT_EQ(FetchOnce(ts.port(), request, &warm), 200);
  ClientResponse hit;
  ASSERT_EQ(FetchOnce(ts.port(), request, &hit), 200);
  ASSERT_NE(hit.FindHeader("x-cache"), nullptr);
  ASSERT_EQ(*hit.FindHeader("x-cache"), "hit");

  ClientResponse inv;
  ASSERT_EQ(FetchOnce(ts.port(), PostRequest("/v1/cache/invalidate", ""),
                      &inv),
            200);
  auto body = ParseBody(inv);
  ASSERT_TRUE(body.ok()) << inv.body;
  EXPECT_EQ(body->Find("result_cache_generation")->AsInt(), 1);
  EXPECT_EQ(body->Find("query_cache_generation")->AsInt(), 1);

  ClientResponse after;
  ASSERT_EQ(FetchOnce(ts.port(), request, &after), 200);
  ASSERT_NE(after.FindHeader("x-cache"), nullptr);
  EXPECT_EQ(*after.FindHeader("x-cache"), "miss");  // Cache is empty again.
  EXPECT_EQ(warm.body, after.body);

  // GET on the invalidate route is a method error, not a handler.
  ClientResponse wrong;
  ASSERT_EQ(FetchOnce(ts.port(), GetRequest("/v1/cache/invalidate"), &wrong),
            405);
}

TEST(HttpServerTest, CacheDisabledServerHasNoCacheSurface) {
  TestServer ts(testutil::MakeSocialNetworkGraph());  // No cache wired.
  ClientResponse r;
  ASSERT_EQ(FetchOnce(ts.port(),
                      PostRequest("/v1/search",
                                  R"({"query":"Mary, John","k":3})"),
                      &r),
            200);
  EXPECT_EQ(r.FindHeader("x-cache"), nullptr);
  ClientResponse inv;
  ASSERT_EQ(FetchOnce(ts.port(), PostRequest("/v1/cache/invalidate", ""),
                      &inv),
            404);
}

TEST(HttpServerTest, VarzReportsCacheSections) {
  TestServerOptions opts;
  opts.cache = true;
  TestServer ts(testutil::MakeSocialNetworkGraph(), opts);
  const std::string request =
      PostRequest("/v1/search", R"({"query":"Mary, John","k":3})");
  ClientResponse warm;
  ASSERT_EQ(FetchOnce(ts.port(), request, &warm), 200);
  ClientResponse hit;
  ASSERT_EQ(FetchOnce(ts.port(), request, &hit), 200);

  ClientResponse r;
  ASSERT_EQ(FetchOnce(ts.port(), GetRequest("/varz"), &r), 200);
  auto varz = ParseBody(r);
  ASSERT_TRUE(varz.ok()) << r.body;
  ASSERT_NE(varz->Find("result_cache"), nullptr) << r.body;
  EXPECT_EQ(varz->Find("result_cache")->Find("hits")->AsInt(), 1);
  EXPECT_EQ(varz->Find("result_cache")->Find("misses")->AsInt(), 1);
  ASSERT_NE(varz->Find("match_cache"), nullptr);
  ASSERT_NE(varz->Find("viability_cache"), nullptr);
  EXPECT_EQ(varz->Find("result_cache_generation")->AsInt(), 0);
}

TEST(HttpServerTest, BadRequestsProduceTypedErrors) {
  TestServer ts(testutil::MakeSocialNetworkGraph());
  struct Case {
    std::string body;
    std::string expected_type;
  };
  const std::vector<Case> cases = {
      {R"({"query":)", "json"},
      {R"([1,2,3])", "request"},
      {R"({"k":3})", "request"},
      {R"({"query":"Mary","k":-1})", "request"},
      {R"({"query":"Mary","matches":"nope"})", "request"},
  };
  for (const Case& c : cases) {
    ClientResponse r;
    ASSERT_EQ(FetchOnce(ts.port(), PostRequest("/v1/search", c.body), &r),
              400)
        << c.body;
    auto body = ParseBody(r);
    ASSERT_TRUE(body.ok()) << r.body;
    EXPECT_EQ(body->Find("error")->Find("type")->AsString(), c.expected_type)
        << c.body;
  }
}

TEST(HttpServerTest, QueryParseErrorCarriesCodeAndOffset) {
  TestServer ts(testutil::MakeSocialNetworkGraph());
  // Unterminated quote: structured error with a byte offset into the query.
  ClientResponse r;
  ASSERT_EQ(FetchOnce(ts.port(),
                      PostRequest("/v1/search", R"({"query":"\"Mary"})"),
                      &r),
            400);
  auto body = ParseBody(r);
  ASSERT_TRUE(body.ok()) << r.body;
  const JsonValue* error = body->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("type")->AsString(), "query-parse");
  ASSERT_NE(error->Find("code"), nullptr) << r.body;
  ASSERT_NE(error->Find("offset"), nullptr) << r.body;
  EXPECT_TRUE(error->Find("offset")->is_int());
  EXPECT_FALSE(error->Find("message")->AsString().empty());
}

TEST(HttpServerTest, RoutingErrors) {
  TestServer ts(testutil::MakeSocialNetworkGraph());
  ClientResponse r;
  EXPECT_EQ(FetchOnce(ts.port(), GetRequest("/nope"), &r), 404);
  EXPECT_EQ(FetchOnce(ts.port(), GetRequest("/v1/search"), &r), 405);
  const std::string* allow = r.FindHeader("allow");
  ASSERT_NE(allow, nullptr);
  EXPECT_EQ(*allow, "POST");
  EXPECT_EQ(FetchOnce(ts.port(), PostRequest("/healthz", ""), &r), 405);
  // A malformed request line is rejected by the parser layer.
  TestClient client;
  ASSERT_TRUE(client.Connect(ts.port()));
  ASSERT_TRUE(client.Send("GARBAGE\r\n\r\n"));
  ClientResponse bad;
  ASSERT_TRUE(client.ReadResponse(&bad));
  EXPECT_EQ(bad.status, 400);
}

TEST(HttpServerTest, KeepAliveServesSequentialRequests) {
  TestServer ts(testutil::MakeSocialNetworkGraph());
  TestClient client;
  ASSERT_TRUE(client.Connect(ts.port()));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Send(
        PostRequest("/v1/search", R"({"query":"Mary, John","k":2})")));
    ClientResponse r;
    ASSERT_TRUE(client.ReadResponse(&r)) << "request " << i;
    EXPECT_EQ(r.status, 200);
    const std::string* connection = r.FindHeader("connection");
    ASSERT_NE(connection, nullptr);
    EXPECT_EQ(*connection, "keep-alive");
  }
  // Connection: close is honored.
  ASSERT_TRUE(client.Send(
      "GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"));
  ClientResponse last;
  ASSERT_TRUE(client.ReadResponse(&last));
  EXPECT_EQ(last.status, 200);
  EXPECT_EQ(*last.FindHeader("connection"), "close");
}

TEST(HttpServerTest, DeadlineHeaderStopsLongQuery) {
  TestServerOptions opts;
  opts.threads = 2;
  TestServer ts(MakeChainGraph(120000), opts);
  ClientResponse r;
  ASSERT_EQ(FetchOnce(ts.port(),
                      PostRequest("/v1/search", R"({"query":"left, right"})",
                                  {{"deadline-ms", "1"}}),
                      &r),
            200);
  auto body = ParseBody(r);
  ASSERT_TRUE(body.ok()) << r.body;
  EXPECT_EQ(body->Find("stop_reason")->AsString(), "deadline");
  EXPECT_TRUE(body->Find("deadline_exceeded")->AsBool());
  EXPECT_TRUE(body->Find("truncated")->AsBool());

  // A malformed deadline is a 400 before admission.
  ASSERT_EQ(FetchOnce(ts.port(),
                      PostRequest("/v1/search", R"({"query":"left, right"})",
                                  {{"deadline-ms", "soon"}}),
                      &r),
            400);
}

// Saturation + graceful shutdown, end to end: with a single executor thread
// and max_queue 1, a second search sheds with 429; Shutdown() then cancels
// the straggler through the shutdown token and its JSON response (stop
// reason "cancelled") is still flushed before the connection closes.
TEST(HttpServerTest, ShedsAtSaturationAndCancelsOnShutdown) {
  TestServerOptions opts;
  opts.threads = 1;
  opts.admission.max_queue = 1;
  opts.drain_timeout_ms = 50;
  TestServer ts(MakeChainGraph(150000), opts);

  TestClient slow;
  ASSERT_TRUE(slow.Connect(ts.port()));
  ASSERT_TRUE(
      slow.Send(PostRequest("/v1/search", R"({"query":"left, right"})")));
  // Wait until the slow query is admitted.
  for (int i = 0; i < 500 && ts.admission()->depth() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(ts.admission()->depth(), 1);

  ClientResponse shed;
  ASSERT_EQ(FetchOnce(ts.port(),
                      PostRequest("/v1/search", R"({"query":"left, right"})"),
                      &shed),
            429);
  const std::string* retry_after = shed.FindHeader("retry-after");
  ASSERT_NE(retry_after, nullptr);
  EXPECT_EQ(*retry_after, "1");
  auto shed_body = ParseBody(shed);
  ASSERT_TRUE(shed_body.ok()) << shed.body;
  EXPECT_EQ(shed_body->Find("error")->Find("type")->AsString(), "overload");
  EXPECT_EQ(shed_body->Find("error")->Find("reason")->AsString(),
            "queue-full");

  // Graceful shutdown: the straggler's response is flushed, cancelled.
  ts.server()->Shutdown();
  ClientResponse r;
  ASSERT_TRUE(slow.ReadResponse(&r));
  EXPECT_EQ(r.status, 200);
  auto body = ParseBody(r);
  ASSERT_TRUE(body.ok()) << r.body;
  EXPECT_EQ(body->Find("stop_reason")->AsString(), "cancelled");
  EXPECT_TRUE(body->Find("cancelled")->AsBool());
  EXPECT_FALSE(ts.server()->running());
}

TEST(HttpServerTest, ShutdownClosesListener) {
  TestServer ts(testutil::MakeSocialNetworkGraph());
  const int port = ts.port();
  ClientResponse r;
  ASSERT_EQ(FetchOnce(port, GetRequest("/healthz"), &r), 200);
  ts.server()->Shutdown();
  TestClient client;
  EXPECT_FALSE(client.Connect(port));
}

TEST(HttpServerTest, PollBackendServes) {
  TestServerOptions opts;
  opts.use_poll = true;
  TestServer ts(testutil::MakeSocialNetworkGraph(), opts);
  ClientResponse r;
  ASSERT_EQ(FetchOnce(ts.port(), GetRequest("/healthz"), &r), 200);
  ASSERT_EQ(FetchOnce(ts.port(),
                      PostRequest("/v1/search", R"({"query":"Mary, John"})"),
                      &r),
            200);
  EXPECT_EQ(ParseBody(r)->Find("status")->AsString(), "ok");
}

// The per-request parallel_keywords knob: identical results to the
// sequential default (the engine's replay contract, verified end to end
// through the JSON layer — with stats, even the consumed-pop counter
// matches), and a non-bool value is a typed 400.
TEST(HttpServerTest, ParallelKeywordsKnobMatchesSequential) {
  TestServer ts(testutil::MakeSocialNetworkGraph());
  ClientResponse seq;
  ASSERT_EQ(FetchOnce(ts.port(),
                      PostRequest("/v1/search",
                                  R"({"query":"Mary, John","stats":true})"),
                      &seq),
            200);
  ClientResponse par;
  ASSERT_EQ(
      FetchOnce(ts.port(),
                PostRequest(
                    "/v1/search",
                    R"({"query":"Mary, John","stats":true,)"
                    R"("parallel_keywords":true})"),
                &par),
      200);
  auto seq_body = ParseBody(seq);
  auto par_body = ParseBody(par);
  ASSERT_TRUE(seq_body.ok()) << seq.body;
  ASSERT_TRUE(par_body.ok()) << par.body;
  EXPECT_EQ(par_body->Find("status")->AsString(), "ok");
  EXPECT_EQ(par_body->Find("stop_reason")->AsString(),
            seq_body->Find("stop_reason")->AsString());
  ASSERT_EQ(par_body->Find("result_count")->AsInt(),
            seq_body->Find("result_count")->AsInt());
  const auto& seq_results = seq_body->Find("results")->items();
  const auto& par_results = par_body->Find("results")->items();
  ASSERT_EQ(seq_results.size(), par_results.size());
  for (size_t i = 0; i < seq_results.size(); ++i) {
    EXPECT_EQ(par_results[i].Find("root")->AsInt(),
              seq_results[i].Find("root")->AsInt())
        << "result " << i;
  }
#ifndef TGKS_NO_STATS
  EXPECT_EQ(par_body->Find("counters")->Find("pops")->AsInt(),
            seq_body->Find("counters")->Find("pops")->AsInt());
#endif

  ClientResponse bad;
  ASSERT_EQ(FetchOnce(ts.port(),
                      PostRequest(
                          "/v1/search",
                          R"({"query":"Mary","parallel_keywords":"yes"})"),
                      &bad),
            400);
  auto bad_body = ParseBody(bad);
  ASSERT_TRUE(bad_body.ok()) << bad.body;
  EXPECT_EQ(bad_body->Find("error")->Find("type")->AsString(), "request");
}

// A client that disconnects mid-parallel-query must not strand the query's
// prefetch tasks or scratch arenas: shutdown still drains cleanly (the
// shutdown token aborts the tasks through the engine's per-stride cancel
// checks, and the task-group join releases every scratch). Run under TSan
// in CI — a leaked task racing teardown is a data race there.
TEST(HttpServerTest, ParallelQueryClientDisconnectDrainsCleanly) {
  TestServerOptions opts;
  opts.threads = 2;
  opts.drain_timeout_ms = 50;
  TestServer ts(MakeChainGraph(150000), opts);

  TestClient doomed;
  ASSERT_TRUE(doomed.Connect(ts.port()));
  ASSERT_TRUE(doomed.Send(PostRequest(
      "/v1/search",
      R"({"query":"left, right","parallel_keywords":true})")));
  // Wait until the query is admitted, then vanish mid-flight.
  for (int i = 0; i < 500 && ts.admission()->depth() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(ts.admission()->depth(), 1);
  doomed.Close();

  // Shutdown cancels the straggler and joins the executor; a stranded
  // prefetch task or unreleased scratch would hang or race here.
  ts.server()->Shutdown();
  EXPECT_FALSE(ts.server()->running());
}

// Concurrency smoke: several client threads hammer the server with mixed
// traffic over keep-alive connections. Run under TSan in CI.
TEST(HttpServerTest, ConcurrentClientsMixedTraffic) {
  TestServerOptions opts;
  opts.threads = 2;
  TestServer ts(testutil::MakeSocialNetworkGraph(), opts);
  constexpr int kClients = 4;
  constexpr int kRequests = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&ts, &failures, c] {
      TestClient client;
      if (!client.Connect(ts.port())) {
        ++failures;
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        std::string request;
        switch ((c + i) % 4) {
          case 0:
            request =
                PostRequest("/v1/search", R"({"query":"Mary, John","k":2})");
            break;
          case 1:
            request = PostRequest(
                "/v1/search",
                R"({"query":"Mary, John","k":2,"parallel_keywords":true})");
            break;
          case 2:
            request = GetRequest("/healthz");
            break;
          default:
            request = GetRequest("/varz");
            break;
        }
        ClientResponse r;
        if (!client.Send(request) || !client.ReadResponse(&r) ||
            r.status != 200) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(HttpServerTest, IngestEndpointsRequireLiveMode) {
  // A static server (no --live) has no LiveGraph behind the router; the
  // ingest endpoints must say so rather than half-work.
  TestServer ts(testutil::MakeSocialNetworkGraph());
  ClientResponse r;
  ASSERT_EQ(FetchOnce(ts.port(),
                      PostRequest("/v1/ingest", R"({"nodes":[]})"), &r),
            404);
  EXPECT_NE(r.body.find("live ingest is not enabled"), std::string::npos)
      << r.body;
  ASSERT_EQ(FetchOnce(ts.port(), PostRequest("/v1/compact", ""), &r), 404);
  // And a static search response carries no snapshot-generation header.
  ASSERT_EQ(FetchOnce(ts.port(),
                      PostRequest("/v1/search", R"({"query":"Mary"})"), &r),
            200);
  EXPECT_EQ(r.FindHeader("x-snapshot-generation"), nullptr);
}

}  // namespace
}  // namespace tgks::server
