// A tiny blocking HTTP/1.1 client for loopback server tests: connects to
// 127.0.0.1:<port>, writes raw request bytes, and reads fixed-length
// responses (the server always emits Content-Length). Deliberately separate
// from the server's own parser so the tests cross-check the wire format
// with an independent implementation.

#ifndef TGKS_TESTS_SERVER_HTTP_TEST_CLIENT_H_
#define TGKS_TESTS_SERVER_HTTP_TEST_CLIENT_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace tgks::server::testing {

/// One parsed response: status + lowercased headers + body.
struct ClientResponse {
  int status = -1;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* FindHeader(const std::string& name) const {
    for (const auto& [key, value] : headers) {
      if (key == name) return &value;
    }
    return nullptr;
  }
};

/// A keep-alive capable blocking client over one connection.
class TestClient {
 public:
  TestClient() = default;
  ~TestClient() { Close(); }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  bool Connect(int port) {
    Close();
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
      Close();
      return false;
    }
    int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    buffer_.clear();
    return true;
  }

  bool connected() const { return fd_ >= 0; }

  bool Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads exactly one response. Returns false on connection error/EOF
  /// before a complete response arrived.
  bool ReadResponse(ClientResponse* out) {
    *out = ClientResponse{};
    size_t head_end = std::string::npos;
    for (;;) {
      head_end = buffer_.find("\r\n\r\n");
      if (head_end != std::string::npos) break;
      if (!Fill()) return false;
    }
    const std::string head = buffer_.substr(0, head_end + 2);

    // Status line: "HTTP/1.x NNN Reason".
    const size_t sp = head.find(' ');
    if (sp == std::string::npos) return false;
    out->status = std::atoi(head.c_str() + sp + 1);

    // Headers, lowercased names.
    size_t body_len = 0;
    size_t pos = head.find("\r\n") + 2;
    while (pos < head.size()) {
      const size_t eol = head.find("\r\n", pos);
      if (eol == std::string::npos || eol == pos) break;
      const std::string line = head.substr(pos, eol - pos);
      pos = eol + 2;
      const size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string name = line.substr(0, colon);
      std::transform(name.begin(), name.end(), name.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
      });
      std::string value = line.substr(colon + 1);
      const size_t first = value.find_first_not_of(" \t");
      value = first == std::string::npos ? "" : value.substr(first);
      if (name == "content-length") {
        body_len = static_cast<size_t>(std::atoll(value.c_str()));
      }
      out->headers.emplace_back(std::move(name), std::move(value));
    }

    while (buffer_.size() < head_end + 4 + body_len) {
      if (!Fill()) return false;
    }
    out->body = buffer_.substr(head_end + 4, body_len);
    buffer_.erase(0, head_end + 4 + body_len);
    return true;
  }

  /// True once the peer has closed the connection (EOF on read) and no
  /// buffered bytes remain.
  bool WaitForClose() {
    while (Fill()) {
    }
    return true;
  }

  void Close() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
  }

 private:
  bool Fill() {
    char chunk[16 * 1024];
    for (;;) {
      const ssize_t n = read(fd_, chunk, sizeof(chunk));
      if (n > 0) {
        buffer_.append(chunk, static_cast<size_t>(n));
        return true;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF or error.
    }
  }

  int fd_ = -1;
  std::string buffer_;
};

/// Renders a GET request with optional extra headers.
inline std::string GetRequest(
    const std::string& target,
    const std::vector<std::pair<std::string, std::string>>& headers = {}) {
  std::string out = "GET " + target + " HTTP/1.1\r\nhost: test\r\n";
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  return out;
}

/// Renders a POST request with a body and optional extra headers.
inline std::string PostRequest(
    const std::string& target, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers = {}) {
  std::string out = "POST " + target + " HTTP/1.1\r\nhost: test\r\n";
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "content-length: " + std::to_string(body.size()) + "\r\n\r\n";
  out += body;
  return out;
}

/// One-shot: connect, send, read one response. Returns status or -1.
inline int FetchOnce(int port, const std::string& request,
                     ClientResponse* out) {
  TestClient client;
  if (!client.Connect(port)) return -1;
  if (!client.Send(request)) return -1;
  if (!client.ReadResponse(out)) return -1;
  return out->status;
}

}  // namespace tgks::server::testing

#endif  // TGKS_TESTS_SERVER_HTTP_TEST_CLIENT_H_
