// JsonValue/JsonWriter: the serving wire format depends on exact parse and
// render behavior, so these tests pin escaping, number handling, error
// offsets, and the depth limit.

#include "server/json_io.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace tgks::server {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_TRUE(JsonValue::Parse("true")->AsBool());
  EXPECT_FALSE(JsonValue::Parse("false")->AsBool());
  EXPECT_EQ(JsonValue::Parse("42")->AsInt(), 42);
  EXPECT_EQ(JsonValue::Parse("-7")->AsInt(), -7);
  EXPECT_EQ(JsonValue::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, IntVersusDouble) {
  auto integer = JsonValue::Parse("123");
  ASSERT_TRUE(integer.ok());
  EXPECT_TRUE(integer->is_int());
  EXPECT_TRUE(integer->is_number());

  for (const char* text : {"1.5", "1e3", "-2.25E-1", "0.0"}) {
    auto value = JsonValue::Parse(text);
    ASSERT_TRUE(value.ok()) << text;
    EXPECT_FALSE(value->is_int()) << text;
    EXPECT_TRUE(value->is_number()) << text;
  }
  EXPECT_DOUBLE_EQ(JsonValue::Parse("1.5")->AsDouble(), 1.5);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("1e3")->AsDouble(), 1000.0);
  // AsDouble on an int converts.
  EXPECT_DOUBLE_EQ(JsonValue::Parse("7")->AsDouble(), 7.0);
}

TEST(JsonParseTest, NestedContainers) {
  auto v = JsonValue::Parse(
      R"({"query":"a, b","k":5,"matches":[[1,2],[3]],"stats":true})");
  ASSERT_TRUE(v.ok()) << v.status();
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->Find("query")->AsString(), "a, b");
  EXPECT_EQ(v->Find("k")->AsInt(), 5);
  EXPECT_TRUE(v->Find("stats")->AsBool());
  const JsonValue* matches = v->Find("matches");
  ASSERT_TRUE(matches != nullptr && matches->is_array());
  ASSERT_EQ(matches->items().size(), 2u);
  EXPECT_EQ(matches->items()[0].items().size(), 2u);
  EXPECT_EQ(matches->items()[0].items()[1].AsInt(), 2);
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonParseTest, MemberOrderPreservedAndDuplicateKeysShadow) {
  auto v = JsonValue::Parse(R"({"b":1,"a":2,"b":3})");
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->members().size(), 3u);
  EXPECT_EQ(v->members()[0].first, "b");
  EXPECT_EQ(v->members()[1].first, "a");
  // Find returns the first occurrence.
  EXPECT_EQ(v->Find("b")->AsInt(), 1);
}

TEST(JsonParseTest, StringEscapes) {
  auto v = JsonValue::Parse(R"("a\"b\\c\/d\n\t\r\b\f")");
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->AsString(), "a\"b\\c/d\n\t\r\b\f");
}

TEST(JsonParseTest, UnicodeEscapes) {
  EXPECT_EQ(JsonValue::Parse(R"("A")")->AsString(), "A");
  // 2-byte and 3-byte UTF-8.
  EXPECT_EQ(JsonValue::Parse(R"("é")")->AsString(), "\xc3\xa9");
  EXPECT_EQ(JsonValue::Parse(R"("€")")->AsString(), "\xe2\x82\xac");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(JsonValue::Parse(R"("😀")")->AsString(),
            "\xf0\x9f\x98\x80");
  // A lone high surrogate is an error.
  EXPECT_FALSE(JsonValue::Parse(R"("\ud83d")").ok());
}

TEST(JsonParseTest, ErrorsCarryByteOffsets) {
  auto bad = JsonValue::Parse("{\"a\":}");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("byte 5"), std::string::npos)
      << bad.status();

  auto trailing = JsonValue::Parse("42 junk");
  ASSERT_FALSE(trailing.ok());
  EXPECT_NE(trailing.status().message().find("byte 3"), std::string::npos)
      << trailing.status();
}

TEST(JsonParseTest, MalformedDocuments) {
  for (const char* text :
       {"", "{", "[1,", "{\"a\" 1}", "\"unterminated", "tru", "01", "+1",
        "1.", "1e", "2e+", "-", "nulll", "[1 2]", "{\"a\":1,}", "[,]"}) {
    EXPECT_FALSE(JsonValue::Parse(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonParseTest, DepthLimit) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
  // 32 levels is comfortably inside the limit.
  std::string ok = std::string(32, '[') + std::string(32, ']');
  EXPECT_TRUE(JsonValue::Parse(ok).ok());
}

TEST(JsonWriterTest, ObjectsArraysAndCommas) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.Int(1);
  w.Key("b");
  w.BeginArray();
  w.Int(2);
  w.String("x");
  w.Bool(false);
  w.Null();
  w.EndArray();
  w.Key("c");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[2,"x",false,null],"c":{}})");
}

TEST(JsonWriterTest, StringEscaping) {
  JsonWriter w;
  w.String("quote\" slash\\ ctrl\x01 nl\n");
  EXPECT_EQ(w.str(), R"("quote\" slash\\ ctrl\u0001 nl\n")");
}

TEST(JsonWriterTest, DoublesRoundTrip) {
  for (const double value : {0.5, 1.0 / 3.0, 1e-9, 12345.6789, -0.0, 2e300}) {
    JsonWriter w;
    w.Double(value);
    auto parsed = JsonValue::Parse(w.str());
    ASSERT_TRUE(parsed.ok()) << w.str();
    EXPECT_EQ(parsed->AsDouble(), value) << w.str();
  }
  JsonWriter w;
  w.Double(std::numeric_limits<double>::infinity());
  EXPECT_EQ(w.str(), "null");  // Non-finite renders as null per JSON.
}

TEST(JsonWriterTest, WriterOutputReparses) {
  JsonWriter w;
  w.BeginObject();
  w.Key("weird key \"\n");
  w.String("\xe2\x82\xac value");
  w.Key("nested");
  w.BeginArray();
  w.BeginObject();
  w.Key("x");
  w.Double(2.5);
  w.EndObject();
  w.EndArray();
  w.EndObject();
  auto v = JsonValue::Parse(w.str());
  ASSERT_TRUE(v.ok()) << w.str();
  EXPECT_EQ(v->Find("weird key \"\n")->AsString(), "\xe2\x82\xac value");
  EXPECT_DOUBLE_EQ(
      v->Find("nested")->items()[0].Find("x")->AsDouble(), 2.5);
}

}  // namespace
}  // namespace tgks::server
