// Golden transcript for the HTTP API: boots the full serving stack on the
// checked-in social.tgf graph, replays a canned sequence of POST /v1/search
// requests (plus the error paths) over a real socket, and compares
// status + body byte-for-byte against tests/golden/server_api.expected.
//
// Regenerate after an intentional wire-format change with
//
//   TGKS_UPDATE_GOLDEN=1 ctest -R ServerGolden
//
// Responses deliberately omit stats/counters/latency unless the request
// asks for them, so the transcript is byte-identical across machines.

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/query_executor.h"
#include "graph/inverted_index.h"
#include "graph/serialization.h"
#include "graph/temporal_graph.h"
#include "server/http_server.h"
#include "server/http_test_client.h"
#include "server/request_router.h"

namespace tgks::server {
namespace {

using testing::ClientResponse;
using testing::FetchOnce;
using testing::PostRequest;

std::string GoldenPath(const std::string& file) {
  return std::string(TGKS_GOLDEN_DIR) + "/" + file;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ServerGoldenTest, SearchApiTranscript) {
  auto loaded = graph::LoadGraphFromFile(GoldenPath("social.tgf"));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const graph::TemporalGraph graph = std::move(loaded).value();
  const graph::InvertedIndex index(graph);

  std::atomic<bool> draining{false};
  std::atomic<bool> shutdown_cancel{false};
  exec::ExecutorOptions exec_options;
  exec_options.threads = 1;  // Single worker: deterministic ordering.
  exec_options.search.k = 10;
  exec_options.search.extra_cancel = &shutdown_cancel;
  exec::QueryExecutor executor(graph, &index, exec_options);
  AdmissionController admission((AdmissionOptions()));
  RouterContext context;
  context.graph = &graph;
  context.executor = &executor;
  context.admission = &admission;
  context.draining = &draining;
  context.default_k = 10;
  context.dataset_name = "social.tgf";
  RequestRouter router(context);
  HttpServerOptions server_options;
  server_options.draining_flag = &draining;
  server_options.shutdown_cancel = &shutdown_cancel;
  HttpServer server(&router, &admission, server_options);
  ASSERT_TRUE(server.Start().ok());

  // The canned request bodies. Keep in sync with server_api.expected (the
  // transcript embeds each body, so drift is visible in the diff).
  const std::vector<std::string> bodies = {
      // The golden queries of social.queries, through the wire format.
      R"({"query":"Mary, John","k":3})",
      R"({"query":"Mary, John rank by ascending order of result start time","k":2})",
      R"({"query":"Mary, John result time contains [6,7]","k":2})",
      R"({"query":"Mary, John, Bob","k":2})",
      R"({"query":"Mary, Ross result time precedes 3","k":2})",
      // Explicit match sets (node ids of Mary and John in social.tgf).
      R"({"query":"Mary, John","k":1,"matches":[[0],[1]]})",
      // No results: keywords never co-connected in time.
      R"({"query":"Mary, Nobody"})",
      // Error paths: malformed JSON, missing field, structured parse error.
      R"({"query":)",
      R"({"k":3})",
      R"({"query":"\"Mary"})",
      R"({"query":"Mary rank by weirdness"})",
  };

  std::ostringstream transcript;
  transcript << "# Golden transcript for POST /v1/search over social.tgf.\n"
             << "# Regenerate: TGKS_UPDATE_GOLDEN=1 ctest -R ServerGolden\n";
  for (const std::string& body : bodies) {
    ClientResponse response;
    const int status =
        FetchOnce(server.port(), PostRequest("/v1/search", body), &response);
    ASSERT_GT(status, 0) << body;
    transcript << "\n>> " << body << "\n"
               << "<< " << status << " " << response.body << "\n";
  }
  server.Shutdown();

  const std::string expected_path = GoldenPath("server_api.expected");
  const std::string actual = transcript.str();
  if (std::getenv("TGKS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(expected_path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << expected_path;
    out << actual;
    GTEST_LOG_(INFO) << "updated " << expected_path;
    return;
  }
  EXPECT_EQ(actual, ReadFile(expected_path))
      << "wire-format drift; regenerate with TGKS_UPDATE_GOLDEN=1 if "
         "intentional";
}

}  // namespace
}  // namespace tgks::server
