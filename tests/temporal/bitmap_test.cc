#include "temporal/bitmap.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace tgks::temporal {
namespace {

TEST(BitmapTest, StartsAllZero) {
  Bitmap bm(100);
  EXPECT_EQ(bm.size(), 100);
  EXPECT_TRUE(bm.None());
  EXPECT_FALSE(bm.Any());
  EXPECT_EQ(bm.Count(), 0);
}

TEST(BitmapTest, SetTestClear) {
  Bitmap bm(70);
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(69);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(69));
  EXPECT_FALSE(bm.Test(1));
  EXPECT_EQ(bm.Count(), 4);
  bm.Clear(63);
  EXPECT_FALSE(bm.Test(63));
  EXPECT_EQ(bm.Count(), 3);
}

TEST(BitmapTest, SetRangeWithinOneWord) {
  Bitmap bm(64);
  bm.SetRange(3, 7);
  EXPECT_EQ(bm.Count(), 5);
  for (int64_t i = 3; i <= 7; ++i) EXPECT_TRUE(bm.Test(i));
  EXPECT_FALSE(bm.Test(2));
  EXPECT_FALSE(bm.Test(8));
}

TEST(BitmapTest, SetRangeAcrossWords) {
  Bitmap bm(200);
  bm.SetRange(60, 130);
  EXPECT_EQ(bm.Count(), 71);
  EXPECT_TRUE(bm.Test(60));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(128));
  EXPECT_TRUE(bm.Test(130));
  EXPECT_FALSE(bm.Test(59));
  EXPECT_FALSE(bm.Test(131));
}

TEST(BitmapTest, FillRespectsPadding) {
  Bitmap bm(67);
  bm.Fill();
  EXPECT_EQ(bm.Count(), 67);
  EXPECT_TRUE(bm.All());
}

TEST(BitmapTest, AllOnPartiallySet) {
  Bitmap bm(10);
  bm.SetRange(0, 8);
  EXPECT_FALSE(bm.All());
  bm.Set(9);
  EXPECT_TRUE(bm.All());
}

TEST(BitmapTest, EmptyBitmapEdgeCases) {
  Bitmap bm(0);
  EXPECT_TRUE(bm.None());
  EXPECT_TRUE(bm.All());
  EXPECT_EQ(bm.FindFirstSet(0), -1);
  EXPECT_EQ(bm.FindFirstClear(0), -1);
}

TEST(BitmapTest, BooleanOps) {
  Bitmap a(130), b(130);
  a.SetRange(0, 99);
  b.SetRange(50, 129);
  Bitmap band = a;
  band.And(b);
  EXPECT_EQ(band.Count(), 50);  // [50,99]
  Bitmap bor = a;
  bor.Or(b);
  EXPECT_EQ(bor.Count(), 130);
  Bitmap bnot = a;
  bnot.AndNot(b);
  EXPECT_EQ(bnot.Count(), 50);  // [0,49]
  EXPECT_TRUE(bnot.Test(0));
  EXPECT_FALSE(bnot.Test(50));
}

TEST(BitmapTest, SubsetAndIntersects) {
  Bitmap a(100), b(100);
  a.SetRange(10, 20);
  b.SetRange(5, 30);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  Bitmap c(100);
  c.SetRange(40, 50);
  EXPECT_FALSE(a.Intersects(c));
  Bitmap empty(100);
  EXPECT_TRUE(empty.IsSubsetOf(a));
  EXPECT_FALSE(empty.Intersects(a));
}

TEST(BitmapTest, FindFirstSet) {
  Bitmap bm(200);
  bm.Set(70);
  bm.Set(150);
  EXPECT_EQ(bm.FindFirstSet(0), 70);
  EXPECT_EQ(bm.FindFirstSet(70), 70);
  EXPECT_EQ(bm.FindFirstSet(71), 150);
  EXPECT_EQ(bm.FindFirstSet(151), -1);
}

TEST(BitmapTest, FindFirstClear) {
  Bitmap bm(130);
  bm.Fill();
  bm.Clear(65);
  bm.Clear(129);
  EXPECT_EQ(bm.FindFirstClear(0), 65);
  EXPECT_EQ(bm.FindFirstClear(66), 129);
  // Padding bits must never be reported clear.
  bm.Set(129);
  bm.Set(65);
  EXPECT_EQ(bm.FindFirstClear(0), -1);
}

TEST(BitmapTest, ResetZeroes) {
  Bitmap bm(100);
  bm.SetRange(0, 99);
  bm.Reset();
  EXPECT_TRUE(bm.None());
}

TEST(BitmapTest, EqualityIncludesSize) {
  Bitmap a(10), b(10), c(11);
  a.Set(3);
  b.Set(3);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(BitmapTest, ToString) {
  Bitmap bm(5);
  bm.Set(1);
  bm.Set(4);
  EXPECT_EQ(bm.ToString(), "01001");
}

// Property: bitmap ops agree with per-bit reference on random inputs.
TEST(BitmapPropertyTest, OpsMatchPerBitReference) {
  Rng rng(99);
  for (int iter = 0; iter < 50; ++iter) {
    const int64_t n = 1 + static_cast<int64_t>(rng.Uniform(300));
    Bitmap a(n), b(n);
    std::vector<bool> ra(n), rb(n);
    for (int64_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.4)) {
        a.Set(i);
        ra[i] = true;
      }
      if (rng.Bernoulli(0.4)) {
        b.Set(i);
        rb[i] = true;
      }
    }
    Bitmap band = a;
    band.And(b);
    Bitmap bor = a;
    bor.Or(b);
    Bitmap bnot = a;
    bnot.AndNot(b);
    bool subset = true, intersects = false;
    int64_t count_a = 0;
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(band.Test(i), ra[i] && rb[i]);
      EXPECT_EQ(bor.Test(i), ra[i] || rb[i]);
      EXPECT_EQ(bnot.Test(i), ra[i] && !rb[i]);
      subset &= (!ra[i] || rb[i]);
      intersects |= (ra[i] && rb[i]);
      count_a += ra[i];
    }
    EXPECT_EQ(a.IsSubsetOf(b), subset);
    EXPECT_EQ(a.Intersects(b), intersects);
    EXPECT_EQ(a.Count(), count_a);
  }
}

}  // namespace
}  // namespace tgks::temporal
