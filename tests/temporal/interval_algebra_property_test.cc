// Property tests for the IntervalSet algebra, driven by a seeded random
// set generator and cross-checked against a brute-force bitset model.
//
// The algebra underpins everything: NTD time-sets, validity, predicate
// evaluation, result times. These tests pin down
//
//   * the canonical-form invariant (sorted, disjoint, non-adjacent,
//     non-empty intervals) after EVERY operation,
//   * round-trips: (A \ B) ∪ (A ∩ B) == A, complement of complement == A,
//     De Morgan over a bounded universe,
//   * agreement with the instant-by-instant model for union, intersection,
//     subtraction, complement, Subsumes, Overlaps, Contains, Duration,
//   * the canonical empty-interval normalization: [0,-1] is the only empty
//     representation an operation may produce.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "temporal/interval.h"
#include "temporal/interval_set.h"

namespace tgks {
namespace {

using temporal::Interval;
using temporal::IntervalSet;
using temporal::TimePoint;

constexpr TimePoint kUniverse = 24;  // Property tests run within [0, 24).

/// Random set: a handful of random (possibly overlapping, possibly empty)
/// intervals thrown at the normalizing constructor.
IntervalSet RandomSet(Rng* rng) {
  std::vector<Interval> intervals;
  const int n = static_cast<int>(rng->Uniform(5));  // 0..4 intervals.
  for (int i = 0; i < n; ++i) {
    const TimePoint a = static_cast<TimePoint>(rng->Uniform(kUniverse));
    const TimePoint b = static_cast<TimePoint>(rng->Uniform(kUniverse));
    // ~1 in 5 raw intervals is empty (a > b) to exercise normalization.
    if (rng->Bernoulli(0.2)) {
      intervals.push_back(Interval(std::max(a, b), std::min(a, b) - 1));
    } else {
      intervals.push_back(Interval(std::min(a, b), std::max(a, b)));
    }
  }
  return IntervalSet(std::move(intervals));
}

/// Instant-by-instant membership model.
std::vector<bool> Model(const IntervalSet& set) {
  std::vector<bool> bits(static_cast<size_t>(kUniverse), false);
  for (TimePoint t = 0; t < kUniverse; ++t) {
    bits[static_cast<size_t>(t)] = set.Contains(t);
  }
  return bits;
}

IntervalSet FromModel(const std::vector<bool>& bits) {
  std::vector<Interval> intervals;
  for (size_t t = 0; t < bits.size(); ++t) {
    if (bits[t]) intervals.push_back(Interval::Point(static_cast<TimePoint>(t)));
  }
  return IntervalSet(std::move(intervals));
}

/// The representation invariant every IntervalSet must uphold.
void AssertCanonical(const IntervalSet& set, const std::string& context) {
  const std::span<const Interval> iv = set.intervals();
  for (size_t i = 0; i < iv.size(); ++i) {
    ASSERT_FALSE(iv[i].IsEmpty())
        << context << ": stored interval " << i << " is empty";
    if (i > 0) {
      // Sorted, disjoint, AND non-adjacent: a gap of >= 1 instant.
      ASSERT_GT(iv[i].start, iv[i - 1].end + 1)
          << context << ": intervals " << i - 1 << " and " << i
          << " are adjacent or overlap in " << set.ToString();
    }
  }
}

class IntervalAlgebraPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(IntervalAlgebraPropertyTest, OperationsAgreeWithInstantModel) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const IntervalSet a = RandomSet(&rng);
    const IntervalSet b = RandomSet(&rng);
    const std::string ctx = "seed " + std::to_string(GetParam()) + " round " +
                            std::to_string(round) + ": A=" + a.ToString() +
                            " B=" + b.ToString();
    AssertCanonical(a, ctx + " (A)");
    AssertCanonical(b, ctx + " (B)");

    const std::vector<bool> ma = Model(a);
    const std::vector<bool> mb = Model(b);

    const IntervalSet u = a.Union(b);
    const IntervalSet x = a.Intersect(b);
    const IntervalSet d = a.Subtract(b);
    const IntervalSet c = a.ComplementWithin(kUniverse);
    AssertCanonical(u, ctx + " (union)");
    AssertCanonical(x, ctx + " (intersect)");
    AssertCanonical(d, ctx + " (subtract)");
    AssertCanonical(c, ctx + " (complement)");

    std::vector<bool> mu(ma.size()), mx(ma.size()), md(ma.size()),
        mc(ma.size());
    for (size_t t = 0; t < ma.size(); ++t) {
      mu[t] = ma[t] || mb[t];
      mx[t] = ma[t] && mb[t];
      md[t] = ma[t] && !mb[t];
      mc[t] = !ma[t];
    }
    EXPECT_EQ(u, FromModel(mu)) << ctx;
    EXPECT_EQ(x, FromModel(mx)) << ctx;
    EXPECT_EQ(d, FromModel(md)) << ctx;
    EXPECT_EQ(c, FromModel(mc)) << ctx;

    // Scalar queries against the model.
    EXPECT_EQ(a.Duration(),
              static_cast<int64_t>(std::count(ma.begin(), ma.end(), true)))
        << ctx;
    const bool model_subsumes = [&] {
      for (size_t t = 0; t < ma.size(); ++t) {
        if (mb[t] && !ma[t]) return false;
      }
      return true;
    }();
    const bool model_overlaps = [&] {
      for (size_t t = 0; t < ma.size(); ++t) {
        if (ma[t] && mb[t]) return true;
      }
      return false;
    }();
    EXPECT_EQ(a.Subsumes(b), model_subsumes) << ctx;
    EXPECT_EQ(a.Overlaps(b), model_overlaps) << ctx;
  }
}

TEST_P(IntervalAlgebraPropertyTest, RoundTripsAndDeMorgan) {
  Rng rng(GetParam() ^ 0xABCDEF);
  for (int round = 0; round < 200; ++round) {
    const IntervalSet a = RandomSet(&rng);
    const IntervalSet b = RandomSet(&rng);
    const std::string ctx = "round " + std::to_string(round) +
                            ": A=" + a.ToString() + " B=" + b.ToString();

    // Partition round-trip: (A \ B) ∪ (A ∩ B) == A, with the two parts
    // disjoint.
    const IntervalSet diff = a.Subtract(b);
    const IntervalSet common = a.Intersect(b);
    EXPECT_EQ(diff.Union(common), a) << ctx;
    EXPECT_FALSE(diff.Overlaps(common)) << ctx;

    // Double complement.
    EXPECT_EQ(a.ComplementWithin(kUniverse).ComplementWithin(kUniverse), a)
        << ctx;

    // De Morgan within the universe.
    EXPECT_EQ(a.Union(b).ComplementWithin(kUniverse),
              a.ComplementWithin(kUniverse)
                  .Intersect(b.ComplementWithin(kUniverse)))
        << ctx;
    EXPECT_EQ(a.Intersect(b).ComplementWithin(kUniverse),
              a.ComplementWithin(kUniverse)
                  .Union(b.ComplementWithin(kUniverse)))
        << ctx;

    // Subtract-as-complement: A \ B == A ∩ ¬B.
    EXPECT_EQ(diff, a.Intersect(b.ComplementWithin(kUniverse))) << ctx;

    // Identities and absorptions.
    EXPECT_EQ(a.Union(a), a) << ctx;
    EXPECT_EQ(a.Intersect(a), a) << ctx;
    EXPECT_EQ(a.Subtract(a), IntervalSet()) << ctx;
    EXPECT_EQ(a.Union(IntervalSet()), a) << ctx;
    EXPECT_EQ(a.Intersect(IntervalSet()), IntervalSet()) << ctx;
    EXPECT_EQ(a.Intersect(IntervalSet::All(kUniverse)), a) << ctx;
    EXPECT_TRUE(a.Subsumes(common)) << ctx;
    EXPECT_TRUE(a.Union(b).Subsumes(a)) << ctx;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalAlgebraPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(IntervalNormalizationTest, EmptyIntervalHasOneCanonicalForm) {
  // The canonical empty interval is [0,-1]; every empty-producing operation
  // must return exactly that representation.
  const Interval canonical;
  EXPECT_EQ(canonical.start, 0);
  EXPECT_EQ(canonical.end, -1);
  const Interval empty = Interval(7, 9).Intersect(Interval(1, 3));
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_EQ(empty.start, 0);
  EXPECT_EQ(empty.end, -1);
  // Interval equality treats every empty pair as equal regardless of raw
  // fields, and the set constructor normalizes them away entirely.
  EXPECT_EQ(Interval(5, 2), canonical);
  EXPECT_TRUE(IntervalSet{Interval(5, 2)}.IsEmpty());
  EXPECT_TRUE(IntervalSet({Interval(5, 2), Interval(9, 3)}).IsEmpty());
}

// Small-buffer-optimization coverage: IntervalSet stores up to two
// intervals inline and spills to the heap beyond that. Every special member
// must be correct across the inline <-> heap boundary, and the
// destination-passing ops must agree with their allocating counterparts
// whatever mix of representations the operands and destination are in.

/// One set per representation class: empty, inline (1-2 intervals), and
/// heap-spilled (3+ intervals).
std::vector<IntervalSet> RepresentationZoo() {
  return {
      IntervalSet(),                                          // Empty inline.
      IntervalSet{Interval(2, 5)},                            // 1 (inline).
      IntervalSet({Interval(0, 1), Interval(8, 9)}),          // 2 (inline max).
      IntervalSet({Interval(0, 0), Interval(3, 4), Interval(7, 9)}),  // Spill.
      IntervalSet({Interval(0, 0), Interval(2, 2), Interval(4, 5),
                   Interval(8, 10), Interval(14, 20)}),       // Deep spill.
  };
}

TEST(IntervalSetSboTest, CopyAcrossRepresentationBoundary) {
  for (const IntervalSet& src : RepresentationZoo()) {
    for (const IntervalSet& dst_init : RepresentationZoo()) {
      IntervalSet dst = dst_init;  // Copy-construct.
      EXPECT_EQ(dst, dst_init);
      dst = src;  // Copy-assign across every representation pair.
      EXPECT_EQ(dst, src) << "src=" << src.ToString()
                          << " dst was " << dst_init.ToString();
      // The source must be untouched by copying from it.
      EXPECT_EQ(src.Duration(), IntervalSet(src).Duration());
    }
  }
}

TEST(IntervalSetSboTest, MoveAcrossRepresentationBoundary) {
  for (const IntervalSet& src_init : RepresentationZoo()) {
    for (const IntervalSet& dst_init : RepresentationZoo()) {
      IntervalSet src = src_init;
      IntervalSet moved(std::move(src));  // Move-construct.
      EXPECT_EQ(moved, src_init);

      IntervalSet src2 = src_init;
      IntervalSet dst = dst_init;
      dst = std::move(src2);  // Move-assign across every pair.
      EXPECT_EQ(dst, src_init) << "src=" << src_init.ToString()
                               << " dst was " << dst_init.ToString();
      // Moved-from sets must still be valid for reuse (assign, ops).
      src2 = dst_init;
      EXPECT_EQ(src2, dst_init);
    }
  }
}

TEST(IntervalSetSboTest, SelfAssignmentIsANoOp) {
  for (const IntervalSet& init : RepresentationZoo()) {
    IntervalSet set = init;
    IntervalSet& self = set;
    set = self;  // Copy self-assign (aliased through a reference).
    EXPECT_EQ(set, init);
  }
}

TEST(IntervalSetSboTest, SwapAcrossRepresentationBoundary) {
  for (const IntervalSet& a_init : RepresentationZoo()) {
    for (const IntervalSet& b_init : RepresentationZoo()) {
      IntervalSet a = a_init;
      IntervalSet b = b_init;
      a.Swap(b);
      EXPECT_EQ(a, b_init);
      EXPECT_EQ(b, a_init);
      a.Swap(a);  // Self-swap must hold too.
      EXPECT_EQ(a, b_init);
    }
  }
}

TEST_P(IntervalAlgebraPropertyTest, DestinationPassingOpsMatchAllocating) {
  Rng rng(GetParam() ^ 0x5B05B0);
  // The destination cycles through representations (including spilled ones
  // with leftover garbage capacity) to catch stale-state reuse bugs.
  std::vector<IntervalSet> dests = RepresentationZoo();
  size_t next_dest = 0;
  for (int round = 0; round < 300; ++round) {
    const IntervalSet a = RandomSet(&rng);
    const IntervalSet b = RandomSet(&rng);
    IntervalSet& dst = dests[next_dest++ % dests.size()];
    const std::string ctx = "round " + std::to_string(round) +
                            ": A=" + a.ToString() + " B=" + b.ToString();

    dst.AssignIntersectionOf(a, b);
    EXPECT_EQ(dst, a.Intersect(b)) << ctx;
    AssertCanonical(dst, ctx + " (assign-intersect)");

    dst.AssignUnionOf(a, b);
    EXPECT_EQ(dst, a.Union(b)) << ctx;
    AssertCanonical(dst, ctx + " (assign-union)");

    dst.AssignDifferenceOf(a, b);
    EXPECT_EQ(dst, a.Subtract(b)) << ctx;
    AssertCanonical(dst, ctx + " (assign-difference)");

    // IsCoveredBy is the allocation-free replacement for
    // "Subtract(other).IsEmpty()" on the iterator hot path.
    EXPECT_EQ(a.IsCoveredBy(b), a.Subtract(b).IsEmpty()) << ctx;
  }
}

TEST(IntervalNormalizationTest, ConstructorCanonicalizesAdjacency) {
  // Adjacent and overlapping inputs fuse; ordering is irrelevant.
  const IntervalSet s({Interval(4, 6), Interval(0, 2), Interval(3, 3),
                       Interval(5, 9)});
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0], Interval(0, 9));
  const IntervalSet gap({Interval(0, 2), Interval(4, 5)});
  ASSERT_EQ(gap.intervals().size(), 2u);  // Gap at 3 stays a gap.
  EXPECT_EQ(gap.Duration(), 5);
}

}  // namespace
}  // namespace tgks
