#include "temporal/interval_set.h"

#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "temporal/bitmap.h"

namespace tgks::temporal {
namespace {

TEST(IntervalSetTest, DefaultIsEmpty) {
  IntervalSet s;
  EXPECT_TRUE(s.IsEmpty());
  EXPECT_EQ(s.Duration(), 0);
  EXPECT_EQ(s.Start(), kNoTimePoint);
  EXPECT_EQ(s.End(), kNoTimePoint);
}

TEST(IntervalSetTest, NormalizationMergesOverlapsAndAdjacency) {
  const IntervalSet s{{5, 9}, {0, 2}, {3, 4}, {8, 12}};
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0], Interval(0, 12));
}

TEST(IntervalSetTest, NormalizationDropsEmptyIntervals) {
  const IntervalSet s{{3, 1}, {5, 5}};
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_EQ(s.intervals()[0], Interval(5, 5));
}

TEST(IntervalSetTest, NormalizationKeepsGaps) {
  const IntervalSet s{{0, 2}, {4, 6}};
  ASSERT_EQ(s.intervals().size(), 2u);
  EXPECT_EQ(s.Duration(), 6);
  EXPECT_EQ(s.Start(), 0);
  EXPECT_EQ(s.End(), 6);
}

TEST(IntervalSetTest, ContainsBinarySearches) {
  const IntervalSet s{{0, 2}, {5, 7}, {10, 10}};
  for (TimePoint t : {0, 1, 2, 5, 6, 7, 10}) EXPECT_TRUE(s.Contains(t));
  for (TimePoint t : {-1, 3, 4, 8, 9, 11}) EXPECT_FALSE(s.Contains(t));
}

TEST(IntervalSetTest, SubsumesAcrossIntervalBoundaries) {
  const IntervalSet big{{0, 5}, {8, 12}};
  EXPECT_TRUE(big.Subsumes(IntervalSet{{1, 3}}));
  EXPECT_TRUE(big.Subsumes(IntervalSet{{0, 5}, {9, 10}}));
  EXPECT_TRUE(big.Subsumes(IntervalSet{}));
  EXPECT_FALSE(big.Subsumes(IntervalSet{{4, 9}}));  // Spans the gap.
  EXPECT_FALSE(big.Subsumes(IntervalSet{{6, 7}}));
  EXPECT_FALSE(IntervalSet{}.Subsumes(IntervalSet{{0, 0}}));
}

TEST(IntervalSetTest, OverlapsEarlyExit) {
  const IntervalSet a{{0, 2}, {10, 12}};
  EXPECT_TRUE(a.Overlaps(IntervalSet{{12, 20}}));
  EXPECT_TRUE(a.Overlaps(IntervalSet{{2, 3}}));
  EXPECT_FALSE(a.Overlaps(IntervalSet{{3, 9}}));
  EXPECT_FALSE(a.Overlaps(IntervalSet{}));
}

TEST(IntervalSetTest, IntersectMultipleFragments) {
  const IntervalSet a{{0, 10}};
  const IntervalSet b{{2, 3}, {5, 6}, {9, 15}};
  const IntervalSet expect{{2, 3}, {5, 6}, {9, 10}};
  EXPECT_EQ(a.Intersect(b), expect);
  EXPECT_EQ(b.Intersect(a), expect);
}

TEST(IntervalSetTest, IntersectWithIntervalOverload) {
  const IntervalSet a{{0, 3}, {6, 9}};
  EXPECT_EQ(a.Intersect(Interval(2, 7)), (IntervalSet{{2, 3}, {6, 7}}));
}

TEST(IntervalSetTest, UnionMerges) {
  const IntervalSet a{{0, 2}, {8, 9}};
  const IntervalSet b{{3, 4}, {6, 8}};
  EXPECT_EQ(a.Union(b), (IntervalSet{{0, 4}, {6, 9}}));
}

TEST(IntervalSetTest, SubtractCutsMiddle) {
  const IntervalSet a{{0, 10}};
  EXPECT_EQ(a.Subtract(IntervalSet{{3, 5}}), (IntervalSet{{0, 2}, {6, 10}}));
}

TEST(IntervalSetTest, SubtractEverything) {
  const IntervalSet a{{2, 4}};
  EXPECT_TRUE(a.Subtract(IntervalSet{{0, 9}}).IsEmpty());
}

TEST(IntervalSetTest, SubtractDisjointIsIdentity) {
  const IntervalSet a{{2, 4}};
  EXPECT_EQ(a.Subtract(IntervalSet{{6, 9}}), a);
}

TEST(IntervalSetTest, SubtractMultipleCuts) {
  const IntervalSet a{{0, 20}};
  const IntervalSet cuts{{0, 1}, {5, 6}, {10, 10}, {19, 25}};
  EXPECT_EQ(a.Subtract(cuts),
            (IntervalSet{{2, 4}, {7, 9}, {11, 18}}));
}

TEST(IntervalSetTest, ComplementWithin) {
  const IntervalSet a{{2, 3}, {6, 7}};
  EXPECT_EQ(a.ComplementWithin(10), (IntervalSet{{0, 1}, {4, 5}, {8, 9}}));
  EXPECT_EQ(IntervalSet().ComplementWithin(3), IntervalSet::All(3));
}

TEST(IntervalSetTest, AllAndPoint) {
  EXPECT_EQ(IntervalSet::All(5), IntervalSet(Interval(0, 4)));
  EXPECT_TRUE(IntervalSet::All(0).IsEmpty());
  EXPECT_EQ(IntervalSet::Point(3).Duration(), 1);
}

TEST(IntervalSetTest, InstantsEnumerates) {
  const IntervalSet s{{1, 2}, {5, 5}};
  const std::vector<TimePoint> expect = {1, 2, 5};
  EXPECT_EQ(s.Instants(), expect);
}

TEST(IntervalSetTest, BitmapRoundTrip) {
  const IntervalSet s{{0, 2}, {4, 4}, {7, 9}};
  const Bitmap bm = s.ToBitmap(10);
  EXPECT_EQ(bm.Count(), s.Duration());
  EXPECT_EQ(IntervalSet::FromBitmap(bm), s);
}

TEST(IntervalSetTest, BitmapClipsOutOfRange) {
  const IntervalSet s{{-5, 2}, {8, 20}};
  const Bitmap bm = s.ToBitmap(10);
  EXPECT_EQ(IntervalSet::FromBitmap(bm), (IntervalSet{{0, 2}, {8, 9}}));
}

TEST(IntervalSetTest, ToString) {
  EXPECT_EQ((IntervalSet{{0, 3}, {7, 7}}).ToString(), "{[0,3] [7,7]}");
  EXPECT_EQ(IntervalSet().ToString(), "{}");
}

// Property test: interval-set algebra agrees with std::set semantics on
// random inputs across the whole API surface.
class IntervalSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

IntervalSet RandomSet(Rng* rng, TimePoint horizon) {
  std::vector<Interval> ivs;
  const int n = static_cast<int>(rng->Uniform(5));
  for (int i = 0; i < n; ++i) {
    const TimePoint a = static_cast<TimePoint>(rng->Uniform(horizon));
    const TimePoint b = static_cast<TimePoint>(rng->Uniform(horizon));
    ivs.emplace_back(std::min(a, b), std::max(a, b));
  }
  return IntervalSet(std::move(ivs));
}

std::set<TimePoint> Materialize(const IntervalSet& s) {
  const auto v = s.Instants();
  return {v.begin(), v.end()};
}

TEST_P(IntervalSetPropertyTest, AlgebraMatchesSetSemantics) {
  Rng rng(GetParam());
  constexpr TimePoint kHorizon = 40;
  for (int iter = 0; iter < 200; ++iter) {
    const IntervalSet a = RandomSet(&rng, kHorizon);
    const IntervalSet b = RandomSet(&rng, kHorizon);
    const auto sa = Materialize(a);
    const auto sb = Materialize(b);

    std::set<TimePoint> expect_and, expect_or, expect_sub;
    for (TimePoint t : sa) {
      if (sb.count(t)) expect_and.insert(t);
      if (!sb.count(t)) expect_sub.insert(t);
    }
    expect_or = sa;
    expect_or.insert(sb.begin(), sb.end());

    EXPECT_EQ(Materialize(a.Intersect(b)), expect_and);
    EXPECT_EQ(Materialize(a.Union(b)), expect_or);
    EXPECT_EQ(Materialize(a.Subtract(b)), expect_sub);
    EXPECT_EQ(a.Overlaps(b), !expect_and.empty());
    EXPECT_EQ(a.Subsumes(b), expect_and.size() == sb.size());
    EXPECT_EQ(a.Duration(), static_cast<int64_t>(sa.size()));
    for (TimePoint t = 0; t < kHorizon; ++t) {
      EXPECT_EQ(a.Contains(t), sa.count(t) > 0);
    }
    // Canonical-form invariant: re-normalizing is a no-op; neighbors gapped.
    const IntervalSet intersection = a.Intersect(b);
    const auto& ivs = intersection.intervals();
    for (size_t i = 1; i < ivs.size(); ++i) {
      EXPECT_GT(ivs[i].start, ivs[i - 1].end + 1);
    }
    // Bitmap round trip.
    EXPECT_EQ(IntervalSet::FromBitmap(a.ToBitmap(kHorizon)), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace tgks::temporal
