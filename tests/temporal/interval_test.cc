#include "temporal/interval.h"

#include <gtest/gtest.h>

namespace tgks::temporal {
namespace {

TEST(IntervalTest, DefaultIsEmpty) {
  Interval iv;
  EXPECT_TRUE(iv.IsEmpty());
  EXPECT_EQ(iv.Length(), 0);
}

TEST(IntervalTest, PointHasLengthOne) {
  const Interval iv = Interval::Point(5);
  EXPECT_FALSE(iv.IsEmpty());
  EXPECT_EQ(iv.Length(), 1);
  EXPECT_TRUE(iv.Contains(5));
  EXPECT_FALSE(iv.Contains(4));
  EXPECT_FALSE(iv.Contains(6));
}

TEST(IntervalTest, LengthIsInclusive) {
  EXPECT_EQ(Interval(2, 5).Length(), 4);
  EXPECT_EQ(Interval(0, 0).Length(), 1);
  EXPECT_EQ(Interval(3, 2).Length(), 0);
}

TEST(IntervalTest, ContainsBoundaries) {
  const Interval iv(2, 5);
  EXPECT_TRUE(iv.Contains(2));
  EXPECT_TRUE(iv.Contains(5));
  EXPECT_FALSE(iv.Contains(1));
  EXPECT_FALSE(iv.Contains(6));
}

TEST(IntervalTest, SubsumesHandlesEmpty) {
  EXPECT_TRUE(Interval(0, 3).Subsumes(Interval()));   // Empty inside anything.
  EXPECT_TRUE(Interval().Subsumes(Interval()));       // Empty inside empty.
  EXPECT_FALSE(Interval().Subsumes(Interval(0, 0)));  // Nothing inside empty.
}

TEST(IntervalTest, SubsumesProper) {
  EXPECT_TRUE(Interval(0, 9).Subsumes(Interval(2, 5)));
  EXPECT_TRUE(Interval(2, 5).Subsumes(Interval(2, 5)));
  EXPECT_FALSE(Interval(2, 5).Subsumes(Interval(1, 5)));
  EXPECT_FALSE(Interval(2, 5).Subsumes(Interval(2, 6)));
}

TEST(IntervalTest, OverlapsIsSymmetricAndTightAtBoundaries) {
  EXPECT_TRUE(Interval(0, 3).Overlaps(Interval(3, 5)));
  EXPECT_TRUE(Interval(3, 5).Overlaps(Interval(0, 3)));
  EXPECT_FALSE(Interval(0, 2).Overlaps(Interval(3, 5)));
  EXPECT_FALSE(Interval(0, 3).Overlaps(Interval()));
  EXPECT_FALSE(Interval().Overlaps(Interval()));
}

TEST(IntervalTest, IntersectClipsToCommonRange) {
  EXPECT_EQ(Interval(0, 5).Intersect(Interval(3, 9)), Interval(3, 5));
  EXPECT_EQ(Interval(0, 5).Intersect(Interval(5, 9)), Interval(5, 5));
  EXPECT_TRUE(Interval(0, 2).Intersect(Interval(4, 9)).IsEmpty());
}

TEST(IntervalTest, EqualityTreatsAllEmptyAsEqual) {
  EXPECT_EQ(Interval(5, 2), Interval(9, 0));
  EXPECT_EQ(Interval(5, 2), Interval());
  EXPECT_FALSE(Interval(1, 2) == Interval(1, 3));
}

TEST(IntervalTest, ToString) {
  EXPECT_EQ(Interval(1, 4).ToString(), "[1,4]");
  EXPECT_EQ(Interval().ToString(), "[]");
}

}  // namespace
}  // namespace tgks::temporal
