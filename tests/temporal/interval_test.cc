#include "temporal/interval.h"

#include <gtest/gtest.h>

namespace tgks::temporal {
namespace {

TEST(IntervalTest, DefaultIsEmpty) {
  Interval iv;
  EXPECT_TRUE(iv.IsEmpty());
  EXPECT_EQ(iv.Length(), 0);
}

TEST(IntervalTest, PointHasLengthOne) {
  const Interval iv = Interval::Point(5);
  EXPECT_FALSE(iv.IsEmpty());
  EXPECT_EQ(iv.Length(), 1);
  EXPECT_TRUE(iv.Contains(5));
  EXPECT_FALSE(iv.Contains(4));
  EXPECT_FALSE(iv.Contains(6));
}

TEST(IntervalTest, LengthIsInclusive) {
  EXPECT_EQ(Interval(2, 5).Length(), 4);
  EXPECT_EQ(Interval(0, 0).Length(), 1);
  EXPECT_EQ(Interval(3, 2).Length(), 0);
}

TEST(IntervalTest, ContainsBoundaries) {
  const Interval iv(2, 5);
  EXPECT_TRUE(iv.Contains(2));
  EXPECT_TRUE(iv.Contains(5));
  EXPECT_FALSE(iv.Contains(1));
  EXPECT_FALSE(iv.Contains(6));
}

TEST(IntervalTest, SubsumesHandlesEmpty) {
  EXPECT_TRUE(Interval(0, 3).Subsumes(Interval()));   // Empty inside anything.
  EXPECT_TRUE(Interval().Subsumes(Interval()));       // Empty inside empty.
  EXPECT_FALSE(Interval().Subsumes(Interval(0, 0)));  // Nothing inside empty.
}

TEST(IntervalTest, SubsumesProper) {
  EXPECT_TRUE(Interval(0, 9).Subsumes(Interval(2, 5)));
  EXPECT_TRUE(Interval(2, 5).Subsumes(Interval(2, 5)));
  EXPECT_FALSE(Interval(2, 5).Subsumes(Interval(1, 5)));
  EXPECT_FALSE(Interval(2, 5).Subsumes(Interval(2, 6)));
}

TEST(IntervalTest, OverlapsIsSymmetricAndTightAtBoundaries) {
  EXPECT_TRUE(Interval(0, 3).Overlaps(Interval(3, 5)));
  EXPECT_TRUE(Interval(3, 5).Overlaps(Interval(0, 3)));
  EXPECT_FALSE(Interval(0, 2).Overlaps(Interval(3, 5)));
  EXPECT_FALSE(Interval(0, 3).Overlaps(Interval()));
  EXPECT_FALSE(Interval().Overlaps(Interval()));
}

TEST(IntervalTest, IntersectClipsToCommonRange) {
  EXPECT_EQ(Interval(0, 5).Intersect(Interval(3, 9)), Interval(3, 5));
  EXPECT_EQ(Interval(0, 5).Intersect(Interval(5, 9)), Interval(5, 5));
  EXPECT_TRUE(Interval(0, 2).Intersect(Interval(4, 9)).IsEmpty());
}

TEST(IntervalTest, EmptyIntersectionIsCanonical) {
  // Disjoint inputs must yield the canonical empty encoding [0,-1], not an
  // arbitrary start > end pair; representation-sensitive consumers (raw
  // field comparisons, hashing) rely on the single encoding.
  const Interval empty = Interval(4, 9).Intersect(Interval(0, 2));
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_EQ(empty.start, 0);
  EXPECT_EQ(empty.end, -1);
}

TEST(IntervalTest, IntersectPropertySweep) {
  // Exhaustive small-range sweep: Intersect is symmetric, subsumed by both
  // operands, exact on membership, and canonical whenever empty.
  for (TimePoint as = -2; as <= 4; ++as) {
    for (TimePoint ae = -2; ae <= 4; ++ae) {
      for (TimePoint bs = -2; bs <= 4; ++bs) {
        for (TimePoint be = -2; be <= 4; ++be) {
          const Interval a(as, ae), b(bs, be);
          const Interval ab = a.Intersect(b);
          EXPECT_EQ(ab, b.Intersect(a));
          EXPECT_TRUE(a.Subsumes(ab));
          EXPECT_TRUE(b.Subsumes(ab));
          for (TimePoint t = -3; t <= 5; ++t) {
            EXPECT_EQ(ab.Contains(t), a.Contains(t) && b.Contains(t))
                << a.ToString() << " ∩ " << b.ToString() << " at " << t;
          }
          if (ab.IsEmpty()) {
            EXPECT_EQ(ab.start, 0);
            EXPECT_EQ(ab.end, -1);
          }
        }
      }
    }
  }
}

TEST(IntervalTest, EqualityTreatsAllEmptyAsEqual) {
  EXPECT_EQ(Interval(5, 2), Interval(9, 0));
  EXPECT_EQ(Interval(5, 2), Interval());
  EXPECT_FALSE(Interval(1, 2) == Interval(1, 3));
}

TEST(IntervalTest, ToString) {
  EXPECT_EQ(Interval(1, 4).ToString(), "[1,4]");
  EXPECT_EQ(Interval().ToString(), "[]");
}

}  // namespace
}  // namespace tgks::temporal
