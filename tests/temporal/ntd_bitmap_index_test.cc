#include "temporal/ntd_bitmap_index.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "common/random.h"

namespace tgks::temporal {
namespace {

// The three implementations must agree; we run the full suite against each.
class NtdIndexTest : public ::testing::TestWithParam<NtdIndexKind> {
 protected:
  std::unique_ptr<NtdSubsumptionIndex> Make(TimePoint horizon) {
    return CreateNtdIndex(GetParam(), horizon);
  }
};

TEST_P(NtdIndexTest, EmptyIndexSubsumesNothing) {
  auto index = Make(20);
  EXPECT_EQ(index->LiveRows(), 0);
  EXPECT_FALSE(index->SubsumedByExisting(IntervalSet{{0, 5}}));
  EXPECT_TRUE(index->CollectSubsumed(IntervalSet{{0, 5}}).empty());
}

TEST_P(NtdIndexTest, ExactMatchSubsumesBothWays) {
  auto index = Make(20);
  const IntervalSet t{{3, 8}};
  const NtdRowHandle h = index->AddRow(t);
  EXPECT_TRUE(index->SubsumedByExisting(t));
  const auto subsumed = index->CollectSubsumed(t);
  ASSERT_EQ(subsumed.size(), 1u);
  EXPECT_EQ(subsumed[0], h);
}

TEST_P(NtdIndexTest, PaperExample34) {
  // Example 3.4: probe 11001001 against rows; rows 2 and 3 subsume it.
  auto index = Make(8);
  // Fig.-5 rows (1-indexed in the paper): we construct four rows such that
  // the 2nd and 3rd contain instants {0,1,4,7} (the 1-bits of the probe).
  index->AddRow(IntervalSet{{0, 1}});                  // Row 0: too small.
  const auto r1 = index->AddRow(IntervalSet{{0, 7}});  // Row 1: subsumes.
  const auto r2 =
      index->AddRow(IntervalSet{{0, 1}, {4, 4}, {6, 7}});  // Row 2: subsumes.
  index->AddRow(IntervalSet{{4, 7}});                      // Row 3: no.
  const IntervalSet probe{{0, 1}, {4, 4}, {7, 7}};         // 11001001.
  EXPECT_TRUE(index->SubsumedByExisting(probe));
  (void)r1;
  (void)r2;
}

TEST_P(NtdIndexTest, StrictSupersetIsNotSubsumed) {
  auto index = Make(20);
  index->AddRow(IntervalSet{{3, 8}});
  EXPECT_FALSE(index->SubsumedByExisting(IntervalSet{{3, 9}}));
  EXPECT_FALSE(index->SubsumedByExisting(IntervalSet{{2, 8}}));
  EXPECT_TRUE(index->SubsumedByExisting(IntervalSet{{4, 7}}));
}

TEST_P(NtdIndexTest, CollectSubsumedFindsStrictSubsets) {
  auto index = Make(20);
  const auto a = index->AddRow(IntervalSet{{4, 6}});
  const auto b = index->AddRow(IntervalSet{{0, 19}});
  const auto c = index->AddRow(IntervalSet{{5, 5}, {8, 9}});
  const auto collected = index->CollectSubsumed(IntervalSet{{3, 10}});
  std::vector<NtdRowHandle> subsumed(collected.begin(), collected.end());
  std::sort(subsumed.begin(), subsumed.end());
  ASSERT_EQ(subsumed.size(), 2u);
  EXPECT_EQ(subsumed[0], std::min(a, c));
  EXPECT_EQ(subsumed[1], std::max(a, c));
  (void)b;
}

TEST_P(NtdIndexTest, RemoveRowForgetsIt) {
  auto index = Make(20);
  const auto h = index->AddRow(IntervalSet{{0, 19}});
  EXPECT_TRUE(index->SubsumedByExisting(IntervalSet{{5, 6}}));
  index->RemoveRow(h);
  EXPECT_EQ(index->LiveRows(), 0);
  EXPECT_FALSE(index->SubsumedByExisting(IntervalSet{{5, 6}}));
  EXPECT_TRUE(index->CollectSubsumed(IntervalSet{{0, 19}}).empty());
}

TEST_P(NtdIndexTest, HandleReuseAfterRemove) {
  auto index = Make(20);
  const auto h1 = index->AddRow(IntervalSet{{0, 3}});
  index->RemoveRow(h1);
  const auto h2 = index->AddRow(IntervalSet{{10, 12}});
  EXPECT_EQ(index->LiveRows(), 1);
  EXPECT_TRUE(index->SubsumedByExisting(IntervalSet{{10, 11}}));
  EXPECT_FALSE(index->SubsumedByExisting(IntervalSet{{0, 3}}));
  (void)h2;
}

TEST_P(NtdIndexTest, GrowthPastInitialCapacity) {
  auto index = Make(64);
  std::vector<NtdRowHandle> handles;
  for (int i = 0; i < 40; ++i) {
    handles.push_back(index->AddRow(IntervalSet{{i, i}}));
  }
  EXPECT_EQ(index->LiveRows(), 40);
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(index->SubsumedByExisting(IntervalSet{{i, i}})) << i;
  }
  // Every point row is subsumed by the full range.
  EXPECT_EQ(index->CollectSubsumed(IntervalSet{{0, 63}}).size(), 40u);
}

TEST_P(NtdIndexTest, MultiIntervalRows) {
  auto index = Make(30);
  index->AddRow(IntervalSet{{0, 5}, {10, 15}});
  EXPECT_TRUE(index->SubsumedByExisting(IntervalSet{{2, 4}, {11, 12}}));
  EXPECT_FALSE(index->SubsumedByExisting(IntervalSet{{2, 4}, {8, 8}}));
  const auto subsumed = index->CollectSubsumed(IntervalSet{{0, 20}});
  EXPECT_EQ(subsumed.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, NtdIndexTest,
                         ::testing::Values(NtdIndexKind::kNaive,
                                           NtdIndexKind::kRowMajor,
                                           NtdIndexKind::kColumnMajor),
                         [](const auto& info) {
                           switch (info.param) {
                             case NtdIndexKind::kNaive:
                               return "Naive";
                             case NtdIndexKind::kRowMajor:
                               return "RowMajor";
                             case NtdIndexKind::kColumnMajor:
                               return "ColumnMajor";
                           }
                           return "Unknown";
                         });

// Property test: all three implementations agree under a random workload of
// adds, removes, and queries.
TEST(NtdIndexCrossCheckTest, ImplementationsAgree) {
  constexpr TimePoint kHorizon = 48;
  Rng rng(4242);
  auto naive = CreateNtdIndex(NtdIndexKind::kNaive, kHorizon);
  auto row = CreateNtdIndex(NtdIndexKind::kRowMajor, kHorizon);
  auto col = CreateNtdIndex(NtdIndexKind::kColumnMajor, kHorizon);
  // Handles differ across implementations; track live sets via a common key.
  std::map<int, std::array<NtdRowHandle, 3>> live;  // key -> handles
  std::map<int, IntervalSet> live_sets;
  int next_key = 0;

  auto random_set = [&rng]() {
    std::vector<Interval> ivs;
    const int n = 1 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < n; ++i) {
      const TimePoint a = static_cast<TimePoint>(rng.Uniform(kHorizon));
      const TimePoint b = static_cast<TimePoint>(rng.Uniform(kHorizon));
      ivs.emplace_back(std::min(a, b), std::max(a, b));
    }
    return IntervalSet(std::move(ivs));
  };

  for (int step = 0; step < 400; ++step) {
    const double action = rng.UniformDouble();
    if (action < 0.5 || live.empty()) {
      const IntervalSet t = random_set();
      if (t.IsEmpty()) continue;
      live[next_key] = {naive->AddRow(t), row->AddRow(t), col->AddRow(t)};
      live_sets[next_key] = t;
      ++next_key;
    } else if (action < 0.7) {
      auto it = live.begin();
      std::advance(it, rng.Uniform(live.size()));
      naive->RemoveRow(it->second[0]);
      row->RemoveRow(it->second[1]);
      col->RemoveRow(it->second[2]);
      live_sets.erase(it->first);
      live.erase(it);
    } else {
      const IntervalSet probe = random_set();
      if (probe.IsEmpty()) continue;
      const bool expect_subsumed =
          std::any_of(live_sets.begin(), live_sets.end(), [&](const auto& kv) {
            return kv.second.Subsumes(probe);
          });
      EXPECT_EQ(naive->SubsumedByExisting(probe), expect_subsumed);
      EXPECT_EQ(row->SubsumedByExisting(probe), expect_subsumed);
      EXPECT_EQ(col->SubsumedByExisting(probe), expect_subsumed);
      size_t expect_count = 0;
      for (const auto& kv : live_sets) {
        expect_count += probe.Subsumes(kv.second);
      }
      EXPECT_EQ(naive->CollectSubsumed(probe).size(), expect_count);
      EXPECT_EQ(row->CollectSubsumed(probe).size(), expect_count);
      EXPECT_EQ(col->CollectSubsumed(probe).size(), expect_count);
    }
    EXPECT_EQ(naive->LiveRows(), static_cast<int64_t>(live.size()));
    EXPECT_EQ(row->LiveRows(), static_cast<int64_t>(live.size()));
    EXPECT_EQ(col->LiveRows(), static_cast<int64_t>(live.size()));
  }
}

}  // namespace
}  // namespace tgks::temporal
