// Shared test fixtures: temporal graphs reconstructing the paper's running
// examples (Fig. 1 social network, a Fig.-2-like graph, Fig. 6).

#ifndef TGKS_TESTS_TESTUTIL_PAPER_GRAPHS_H_
#define TGKS_TESTS_TESTUTIL_PAPER_GRAPHS_H_

#include <cassert>

#include "graph/graph_builder.h"
#include "graph/temporal_graph.h"
#include "temporal/interval_set.h"

namespace tgks::testutil {

/// Node ids of the Fig.-1 social-network fixture.
struct SocialNetworkIds {
  graph::NodeId mary, john, bob, ross, mike, jim, microsoft;
};

/// Fig. 1: the social-network temporal graph of the introduction.
///
/// Constructed so the intro's facts hold for query "Mary, John":
///  - Mary - Bob - Ross - John is valid at t6 and t7;
///  - Mary - Bob - Mike - Jim - John is valid at t4;
///  - Mary - Microsoft - John is never valid (no common instant), which is
///    the invalid result a time-oblivious search would emit.
/// Timeline: 8 instants t0..t7 (the paper's t1..t8 shifted to 0-based).
inline graph::TemporalGraph MakeSocialNetworkGraph(
    SocialNetworkIds* ids = nullptr) {
  using temporal::IntervalSet;
  graph::GraphBuilder b(8);
  const graph::NodeId mary = b.AddNode("Mary", IntervalSet{{0, 7}});
  const graph::NodeId john = b.AddNode("John", IntervalSet{{0, 7}});
  const graph::NodeId bob = b.AddNode("Bob", IntervalSet{{2, 7}});
  const graph::NodeId ross = b.AddNode("Ross", IntervalSet{{5, 7}});
  const graph::NodeId mike = b.AddNode("Mike", IntervalSet{{2, 5}});
  const graph::NodeId jim = b.AddNode("Jim", IntervalSet{{3, 6}});
  const graph::NodeId microsoft = b.AddNode("Microsoft", IntervalSet{{0, 7}});
  // Friendship edges (directed both ways so backward expansion can traverse
  // them regardless of orientation).
  auto both = [&b](graph::NodeId u, graph::NodeId v, IntervalSet val) {
    b.AddEdge(u, v, val);
    b.AddEdge(v, u, std::move(val));
  };
  both(mary, bob, IntervalSet{{2, 7}});
  both(bob, ross, IntervalSet{{5, 7}});
  both(ross, john, IntervalSet{{6, 7}});
  both(bob, mike, IntervalSet{{2, 5}});
  both(mike, jim, IntervalSet{{3, 4}});
  both(jim, john, IntervalSet{{4, 6}});
  // Mary worked at Microsoft early, John later: intervals never meet.
  both(mary, microsoft, IntervalSet{{0, 2}});
  both(microsoft, john, IntervalSet{{5, 7}});
  auto built = b.Build();
  assert(built.ok());
  if (ids != nullptr) {
    *ids = SocialNetworkIds{mary, john, bob, ross, mike, jim, microsoft};
  }
  return std::move(built).value();
}

/// Node ids of the Fig.-6 fixture.
struct Fig6Ids {
  graph::NodeId n1, n2, n3, n4, n5, n6, n7, n9;
  std::vector<graph::NodeId> cloud;
};

/// Fig. 6: the graph of Examples 4.1 and 4.2.
///
/// Properties used by the examples (paper instants t1/t2 are 0/1 here):
///  - keyword k1 matches node 2, k2 matches node 4;
///  - node 3 is valid only at t1; node 1 connects 2 and 3;
///  - a "cloud" of nodes valid at t2 hangs off node 2, so end-time-greedy
///    expansion without keyword round-robin wanders into the cloud;
///  - k3 matches node 6, k4 matches node 9; 6 -> 7 -> 9 is valid at t2 while
///    node 5 (another neighbor of 6) ends at t1.
inline graph::TemporalGraph MakeFig6Graph(Fig6Ids* ids = nullptr,
                                          int cloud_size = 6) {
  using temporal::IntervalSet;
  graph::GraphBuilder b(2);
  const IntervalSet t1{{0, 0}};
  const IntervalSet t2{{1, 1}};
  const IntervalSet both_t{{0, 1}};
  Fig6Ids out;
  out.n1 = b.AddNode("root1", both_t);
  out.n2 = b.AddNode("k1", both_t);
  out.n3 = b.AddNode("bridge3", t1);
  out.n4 = b.AddNode("k2", both_t);
  out.n5 = b.AddNode("five", t1);
  out.n6 = b.AddNode("k3", both_t);
  out.n7 = b.AddNode("seven", t2);
  out.n9 = b.AddNode("k4", both_t);
  auto add_undirected = [&b](graph::NodeId u, graph::NodeId v,
                             IntervalSet val) {
    b.AddEdge(u, v, val);
    b.AddEdge(v, u, std::move(val));
  };
  // Result rooted at node 1: 1 -> 2 (k1) and 1 -> 3 -> 4 (k2), valid at t1.
  add_undirected(out.n1, out.n2, t1);
  add_undirected(out.n1, out.n3, t1);
  add_undirected(out.n3, out.n4, t1);
  // The distracting cloud valid at t2, reachable from node 2.
  graph::NodeId prev = out.n2;
  for (int i = 0; i < cloud_size; ++i) {
    const graph::NodeId c = b.AddNode("cloud" + std::to_string(i), both_t);
    add_undirected(prev, c, t2);
    out.cloud.push_back(c);
    prev = c;
  }
  // Example 4.2: 6 - 5 ends at t1; 6 - 7 - 9 valid at t2.
  add_undirected(out.n6, out.n5, t1);
  add_undirected(out.n6, out.n7, t2);
  add_undirected(out.n7, out.n9, t2);
  auto built = b.Build();
  assert(built.ok());
  if (ids != nullptr) *ids = out;
  return std::move(built).value();
}

}  // namespace tgks::testutil

#endif  // TGKS_TESTS_TESTUTIL_PAPER_GRAPHS_H_
