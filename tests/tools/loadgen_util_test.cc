// Unit tests for the loadgen's pure helpers: Retry-After parsing, backoff
// policy, open-loop scheduler-lag accounting, and planned-request counts.
// These pin the two loadgen bugfixes (ignored Retry-After on 429; silently
// skipped open-loop ticks) without needing sockets.

#include "tools/loadgen_util.h"

#include <gtest/gtest.h>

#include <string>

namespace tgks::loadgen {
namespace {

TEST(ParseRetryAfterSeconds, ExtractsPlainSeconds) {
  const std::string head =
      "HTTP/1.1 429 Too Many Requests\r\n"
      "content-type: application/json\r\n"
      "retry-after: 2\r\n"
      "content-length: 0\r\n"
      "\r\n";
  EXPECT_EQ(ParseRetryAfterSeconds(head), 2);
}

TEST(ParseRetryAfterSeconds, HeaderNameIsCaseInsensitive) {
  EXPECT_EQ(ParseRetryAfterSeconds("HTTP/1.1 429 x\r\nRetry-After: 7\r\n\r\n"),
            7);
  EXPECT_EQ(ParseRetryAfterSeconds("HTTP/1.1 429 x\r\nRETRY-AFTER:0\r\n\r\n"),
            0);
}

TEST(ParseRetryAfterSeconds, AbsentHeaderReturnsMinusOne) {
  EXPECT_EQ(ParseRetryAfterSeconds("HTTP/1.1 200 OK\r\n"
                                   "content-length: 2\r\n\r\n"),
            -1);
  EXPECT_EQ(ParseRetryAfterSeconds(""), -1);
}

TEST(ParseRetryAfterSeconds, RejectsNonIntegerForms) {
  // HTTP-date form is valid HTTP but not produced by the tgks server; the
  // parser must not misread it as a number.
  EXPECT_EQ(ParseRetryAfterSeconds(
                "HTTP/1.1 429 x\r\n"
                "retry-after: Fri, 08 Aug 2026 12:00:00 GMT\r\n\r\n"),
            -1);
  EXPECT_EQ(
      ParseRetryAfterSeconds("HTTP/1.1 429 x\r\nretry-after: 2s\r\n\r\n"), -1);
  EXPECT_EQ(ParseRetryAfterSeconds("HTTP/1.1 429 x\r\nretry-after:\r\n\r\n"),
            -1);
}

TEST(ParseRetryAfterSeconds, DoesNotMatchMidHeaderSubstring) {
  // "x-retry-after" is a different header; only a line-initial match counts.
  EXPECT_EQ(ParseRetryAfterSeconds(
                "HTTP/1.1 429 x\r\nx-retry-after: 9\r\n\r\n"),
            -1);
}

TEST(ParseRetryAfterSeconds, ClampsAbsurdValuesToOneDay) {
  EXPECT_EQ(ParseRetryAfterSeconds(
                "HTTP/1.1 429 x\r\nretry-after: 99999999999\r\n\r\n"),
            86400);
}

TEST(RetryBackoffSeconds, NoHeaderMeansNoBackoff) {
  EXPECT_EQ(RetryBackoffSeconds(-1, 10.0), 0.0);
}

TEST(RetryBackoffSeconds, CappedByRemainingRunTime) {
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(2, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(30, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(5, -0.5), 0.0);  // Run already over.
}

TEST(SchedulerLag, CountsOnlyLateSendsAboveThreshold) {
  SchedulerLag lag;
  lag.RecordSend(0.2);   // On time.
  lag.RecordSend(-3.0);  // Woke early: clamps to zero lag.
  lag.RecordSend(5.0);   // Late.
  EXPECT_EQ(lag.sends, 3);
  EXPECT_EQ(lag.late_sends, 1);
  EXPECT_DOUBLE_EQ(lag.max_lag_ms, 5.0);
  EXPECT_NEAR(lag.MeanLagMs(), (0.2 + 0.0 + 5.0) / 3.0, 1e-9);
}

TEST(SchedulerLag, MergeAccumulatesAcrossWorkers) {
  SchedulerLag a;
  a.RecordSend(2.0);
  SchedulerLag b;
  b.RecordSend(0.5);
  b.RecordSend(8.0);
  a.Merge(b);
  EXPECT_EQ(a.sends, 3);
  EXPECT_EQ(a.late_sends, 2);
  EXPECT_DOUBLE_EQ(a.max_lag_ms, 8.0);
}

TEST(SchedulerLag, EmptyMeanIsZero) {
  EXPECT_DOUBLE_EQ(SchedulerLag{}.MeanLagMs(), 0.0);
}

TEST(PlannedRequests, CountsTicksStrictlyBeforeEnd) {
  // Ticks at 0, 0.1, ..., 0.9 — the tick at exactly 1.0s is outside.
  EXPECT_EQ(PlannedRequests(10.0, 1.0), 10);
  // 2.5 qps over 2s: ticks at 0, 0.4, 0.8, 1.2, 1.6 (2.0 excluded).
  EXPECT_EQ(PlannedRequests(2.5, 2.0), 5);
  // Sub-1 products still plan the t=0 tick.
  EXPECT_EQ(PlannedRequests(0.25, 2.0), 1);
}

TEST(PlannedRequests, ClosedLoopPlansNothing) {
  EXPECT_EQ(PlannedRequests(0.0, 10.0), 0);
  EXPECT_EQ(PlannedRequests(-1.0, 10.0), 0);
  EXPECT_EQ(PlannedRequests(5.0, 0.0), 0);
}

}  // namespace
}  // namespace tgks::loadgen
