// Pure helpers for tgks_loadgen, split out so the 429/Retry-After and
// open-loop scheduling logic is unit-testable without sockets
// (tests/tools/loadgen_util_test.cc).

#ifndef TGKS_TOOLS_LOADGEN_UTIL_H_
#define TGKS_TOOLS_LOADGEN_UTIL_H_

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

namespace tgks::loadgen {

/// Extracts the Retry-After header (delay-seconds form) from an HTTP
/// response head. Returns the non-negative delay in seconds, or -1 when the
/// header is absent or not a plain integer (the HTTP-date form is not used
/// by the tgks server). Header name matching is case-insensitive.
inline int ParseRetryAfterSeconds(const std::string& head) {
  std::string lower(head.size(), '\0');
  std::transform(head.begin(), head.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  size_t pos = 0;
  while ((pos = lower.find("retry-after:", pos)) != std::string::npos) {
    // Only accept the match at the start of a header line.
    if (pos != 0 && lower[pos - 1] != '\n') {
      pos += 1;
      continue;
    }
    size_t v = pos + std::strlen("retry-after:");
    while (v < lower.size() && (lower[v] == ' ' || lower[v] == '\t')) ++v;
    if (v >= lower.size() || !std::isdigit(static_cast<unsigned char>(lower[v]))) {
      return -1;
    }
    long long seconds = 0;
    while (v < lower.size() && std::isdigit(static_cast<unsigned char>(lower[v]))) {
      seconds = seconds * 10 + (lower[v] - '0');
      if (seconds > 86400) return 86400;  // Clamp absurd values to a day.
      ++v;
    }
    // The value must terminate the header line (modulo whitespace).
    while (v < lower.size() && (lower[v] == ' ' || lower[v] == '\t' ||
                                lower[v] == '\r')) {
      ++v;
    }
    if (v < lower.size() && lower[v] != '\n') return -1;
    return static_cast<int>(seconds);
  }
  return -1;
}

/// How long a closed-loop worker should back off after a 429:
/// the server's Retry-After (when present and sane), capped by the time
/// remaining in the run, never negative. With no header, no backoff — the
/// caller keeps its pre-fix immediate-resend behavior visible in the 429
/// count rather than inventing a client-side policy the server didn't ask
/// for.
inline double RetryBackoffSeconds(int retry_after_s, double remaining_s) {
  if (retry_after_s < 0) return 0.0;
  return std::clamp(static_cast<double>(retry_after_s), 0.0,
                    std::max(0.0, remaining_s));
}

/// Open-loop scheduler-lag accounting. Every send records how far behind
/// its scheduled tick it actually left the client; without this,
/// coordinated omission hides overload (latency is measured from the late
/// send, so a saturated client under-reports server latency while silently
/// missing its offered-load target).
struct SchedulerLag {
  int64_t sends = 0;
  int64_t late_sends = 0;    ///< Sends more than kLateThresholdMs behind.
  double sum_lag_ms = 0.0;   ///< Sum over ALL sends (on-time sends add ~0).
  double max_lag_ms = 0.0;

  static constexpr double kLateThresholdMs = 1.0;

  void RecordSend(double lag_ms) {
    if (lag_ms < 0) lag_ms = 0;  // Woke early: not lag.
    ++sends;
    sum_lag_ms += lag_ms;
    max_lag_ms = std::max(max_lag_ms, lag_ms);
    if (lag_ms > kLateThresholdMs) ++late_sends;
  }

  void Merge(const SchedulerLag& other) {
    sends += other.sends;
    late_sends += other.late_sends;
    sum_lag_ms += other.sum_lag_ms;
    max_lag_ms = std::max(max_lag_ms, other.max_lag_ms);
  }

  double MeanLagMs() const {
    return sends > 0 ? sum_lag_ms / static_cast<double>(sends) : 0.0;
  }
};

/// Requests an open-loop run plans to issue: every tick scheduled strictly
/// before `end`. Reported next to `completed` so dropped ticks are visible
/// instead of silently shrinking the offered load.
inline int64_t PlannedRequests(double qps, double duration_s) {
  if (qps <= 0 || duration_s <= 0) return 0;
  // Ticks fire at i/qps for i = 0,1,...; the last one strictly before the
  // end is floor(duration * qps - epsilon); +1 converts index to count.
  const double ticks = duration_s * qps;
  int64_t count = static_cast<int64_t>(ticks);
  if (static_cast<double>(count) == ticks && count > 0) --count;  // i/qps == end excluded.
  return count + 1;
}

}  // namespace tgks::loadgen

#endif  // TGKS_TOOLS_LOADGEN_UTIL_H_
