// tgks_loadgen: HTTP load generator for the tgks_cli --serve endpoint.
//
// Regenerates the same bench-seeded workloads the server's --dataset mode
// uses (bench/bench_util.h, so node ids line up for match-set queries),
// serializes them into POST /v1/search bodies, and replays them over a set
// of keep-alive connections at a target aggregate QPS. Reports achieved
// qps and latency percentiles, in a human table and as one JSON row
// suitable for appending to BENCH_throughput.json.
//
// Usage:
//   tgks_loadgen --workload dblp|social [--host H] [--port P]
//                [--qps Q] [--duration-s S] [--connections C]
//                [--num-queries N] [--k K] [--deadline-ms MS]
//                [--guided] [--zipf S] [--no-cache] [--ingest-mix R]
//                [--label NAME] [--json-out FILE]
//
// --ingest-mix R (0 < R <= 1, server must run --serve --live) interleaves
// POST /v1/ingest into the stream: a fixed-seed schedule marks fraction R
// of the ticks as writes, each appending one node plus two edges stitched
// to a base node, with validity windows that advance over the timeline as
// the run progresses. Windows are derived from the chosen base node's own
// validity so every batch is accepted. The report then splits percentiles
// by class (search rows keep the regular columns; ingest gets its own),
// and every response's x-snapshot-generation header feeds a lag metric:
// how many generations behind the newest published snapshot each search's
// pinned snapshot was. R = 1 measures ingest-only throughput.
//
// --guided sets "guided_search": true on every request body, exercising the
// server's distance-guided search path (docs/reachability.md); the flag is
// echoed in the JSON row as guided_search so baseline and guided runs stay
// distinguishable in BENCH_throughput.json.
//
// --zipf S replays the workload with Zipf(S)-distributed query popularity
// instead of round-robin: a fixed-seed schedule maps request ticks onto
// query indices, so a small set of hot queries dominates — the access
// pattern a result cache is designed for. Each response's x-cache header
// (hit / coalesced / miss, present only when the server runs --cache) is
// tallied and reported as cache_hit_rate in the JSON row. --no-cache sets
// "cache": false on every request body, forcing full searches through a
// cache-enabled server for same-server differential runs.
//
// --qps 0 (the default) runs closed-loop: each connection issues its next
// request as soon as the previous response lands — except after a 429,
// where the server's Retry-After header is honored before the next send
// (ignoring it turned load shedding into a busy-loop that re-offered the
// shed work immediately). With --qps Q, request i is released at
// start + i/Q across all connections (open loop, bounded by the connection
// count), so overload shows up as 429s, not client queueing; every send
// records its scheduler lag (actual send time minus scheduled tick) and
// the JSON row reports planned vs completed requests plus lag stats, so
// coordinated omission is visible instead of silently shrinking the
// offered load.

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "datagen/query_generator.h"
#include "server/json_io.h"
#include "tools/loadgen_util.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::string host = "127.0.0.1";
  int port = 8080;
  std::string workload;  // "dblp" or "social" (required).
  double qps = 0;        // 0 = closed loop.
  double duration_s = 10;
  int connections = 4;
  int num_queries = 100;
  int k = 0;             // 0 = server default.
  int deadline_ms = 0;   // 0 = no deadline-ms header.
  bool parallel_keywords = false;  // Request the server's parallel mode.
  bool guided = false;   // Send "guided_search": true on every request.
  double zipf = 0;       // 0 = round-robin; > 0 = Zipf popularity skew.
  bool no_cache = false;  // Send "cache": false on every request.
  double ingest_mix = 0;  // Fraction of ticks that POST /v1/ingest.
  std::string label = "loadgen";
  std::string json_out;  // Append the JSON row here if non-empty.
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --workload dblp|social [--host H] [--port P]\n"
               "          [--qps Q] [--duration-s S] [--connections C]\n"
               "          [--num-queries N] [--k K] [--deadline-ms MS]\n"
               "          [--parallel-keywords] [--guided] [--zipf S]"
               " [--no-cache]\n"
               "          [--ingest-mix R] [--label NAME] [--json-out FILE]\n",
               argv0);
}

/// One fully serialized HTTP request, ready to write to a socket.
std::string BuildRequest(const Options& opts,
                         const tgks::datagen::WorkloadQuery& wq) {
  tgks::server::JsonWriter body;
  body.BeginObject();
  body.Key("query");
  body.String(wq.query.ToString());
  if (opts.k > 0) {
    body.Key("k");
    body.Int(opts.k);
  }
  if (opts.parallel_keywords) {
    body.Key("parallel_keywords");
    body.Bool(true);
  }
  if (opts.guided) {
    body.Key("guided_search");
    body.Bool(true);
  }
  if (opts.no_cache) {
    body.Key("cache");
    body.Bool(false);
  }
  if (!wq.matches.empty()) {
    body.Key("matches");
    body.BeginArray();
    for (const auto& match_set : wq.matches) {
      body.BeginArray();
      for (const auto node : match_set) body.Int(node);
      body.EndArray();
    }
    body.EndArray();
  }
  body.EndObject();
  const std::string payload = body.Take();

  std::string request;
  request.reserve(payload.size() + 160);
  request += "POST /v1/search HTTP/1.1\r\n";
  request += "host: " + opts.host + ":" + std::to_string(opts.port) + "\r\n";
  request += "content-type: application/json\r\n";
  if (opts.deadline_ms > 0) {
    request += "deadline-ms: " + std::to_string(opts.deadline_ms) + "\r\n";
  }
  request += "content-length: " + std::to_string(payload.size()) + "\r\n";
  request += "\r\n";
  request += payload;
  return request;
}

/// One serialized POST /v1/ingest request: a new node stitched to base
/// node `anchor` by a forward and a reverse edge. The validity window
/// starts at a tick-advancing point inside the anchor's own validity, so
/// timestamps march forward over the run and the server accepts every
/// batch (the edge can never be empty after endpoint clamping).
std::string BuildIngestRequest(const Options& opts,
                               const tgks::graph::TemporalGraph& graph,
                               tgks::graph::NodeId anchor, int64_t tick) {
  const auto& intervals = graph.node(anchor).validity.intervals();
  const auto& last = intervals.back();
  const int64_t span = static_cast<int64_t>(last.end - last.start) + 1;
  const int64_t t = static_cast<int64_t>(last.start) + tick % span;
  const int64_t horizon = static_cast<int64_t>(graph.timeline_length()) - 1;

  tgks::server::JsonWriter body;
  body.BeginObject();
  body.Key("nodes");
  body.BeginArray();
  body.BeginObject();
  body.Key("label");
  body.String("live ingest node " + std::to_string(tick));
  body.Key("weight");
  body.Double(0.1);
  body.Key("validity");
  body.BeginArray();
  body.BeginArray();
  body.Int(t);
  body.Int(horizon);
  body.EndArray();
  body.EndArray();
  body.EndObject();
  body.EndArray();
  body.Key("edges");
  body.BeginArray();
  const auto edge = [&](bool forward) {
    body.BeginObject();
    body.Key(forward ? "src" : "dst");
    body.Int(static_cast<int64_t>(anchor));
    body.Key(forward ? "dst_new" : "src_new");
    body.Int(0);
    body.Key("validity");
    body.BeginArray();
    body.BeginArray();
    body.Int(t);
    body.Int(static_cast<int64_t>(last.end));
    body.EndArray();
    body.EndArray();
    body.EndObject();
  };
  edge(/*forward=*/true);
  edge(/*forward=*/false);
  body.EndArray();
  body.EndObject();
  const std::string payload = body.Take();

  std::string request;
  request.reserve(payload.size() + 160);
  request += "POST /v1/ingest HTTP/1.1\r\n";
  request += "host: " + opts.host + ":" + std::to_string(opts.port) + "\r\n";
  request += "content-type: application/json\r\n";
  request += "content-length: " + std::to_string(payload.size()) + "\r\n";
  request += "\r\n";
  request += payload;
  return request;
}

int ConnectTo(const std::string& host, int port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* result = nullptr;
  const std::string port_str = std::to_string(port);
  if (getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result) != 0) {
    return -1;
  }
  int fd = -1;
  for (struct addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    close(fd);
    fd = -1;
  }
  freeaddrinfo(result);
  if (fd >= 0) {
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

bool WriteAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads exactly one HTTP response off `fd`, using and refilling `buffer`
/// (leftover pipelined bytes persist between calls). Returns the status
/// code, or -1 on a connection error. When `head_out` is non-null it
/// receives the response head (status line + headers) so callers can
/// inspect headers like Retry-After.
int ReadResponse(int fd, std::string* buffer, std::string* head_out) {
  char chunk[16 * 1024];
  // 1. Accumulate until the blank line ends the head.
  size_t head_end = std::string::npos;
  for (;;) {
    head_end = buffer->find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return -1;
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
  const std::string head = buffer->substr(0, head_end + 4);
  if (head_out != nullptr) *head_out = head;

  // 2. Status code from "HTTP/1.x NNN ...".
  int status = -1;
  const size_t sp = head.find(' ');
  if (sp != std::string::npos) status = std::atoi(head.c_str() + sp + 1);

  // 3. Content-Length (the server always sends fixed-length bodies).
  size_t body_len = 0;
  {
    std::string lower = head;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    const size_t pos = lower.find("content-length:");
    if (pos != std::string::npos) {
      body_len = static_cast<size_t>(
          std::atoll(lower.c_str() + pos + std::strlen("content-length:")));
    }
  }

  // 4. Drain the body (plus any leftover already buffered).
  size_t have = buffer->size() - (head_end + 4);
  while (have < body_len) {
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return -1;
    }
    buffer->append(chunk, static_cast<size_t>(n));
    have += static_cast<size_t>(n);
  }
  buffer->erase(0, head_end + 4 + body_len);
  return status;
}

/// Returns the (lowercased) value of the x-cache response header in `head`,
/// or "" when the header is absent (server running without --cache).
std::string CacheHeaderValue(const std::string& head) {
  std::string lower = head;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  const size_t pos = lower.find("\r\nx-cache:");
  if (pos == std::string::npos) return "";
  size_t begin = pos + std::strlen("\r\nx-cache:");
  while (begin < lower.size() && lower[begin] == ' ') ++begin;
  const size_t line_end = lower.find("\r\n", begin);
  return lower.substr(begin, line_end == std::string::npos
                                 ? std::string::npos
                                 : line_end - begin);
}

/// Returns the integer value of the x-snapshot-generation header in
/// `head`, or -1 when absent (server not running --live).
int64_t SnapshotGenerationOf(const std::string& head) {
  std::string lower = head;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  const size_t pos = lower.find("\r\nx-snapshot-generation:");
  if (pos == std::string::npos) return -1;
  return std::atoll(lower.c_str() + pos +
                    std::strlen("\r\nx-snapshot-generation:"));
}

struct WorkerStats {
  std::vector<double> latencies_ms;
  int64_t completed = 0;
  int64_t status_2xx = 0;
  int64_t status_429 = 0;
  int64_t status_other = 0;
  int64_t errors = 0;  // Connection-level failures.
  int64_t retry_after_waits = 0;  // Closed-loop backoffs honored after 429s.
  // x-cache tallies from 2xx responses; all zero when the server has no
  // result cache (header absent).
  int64_t cache_hits = 0;
  int64_t cache_coalesced = 0;
  int64_t cache_misses = 0;
  // --ingest-mix accounting (all zero otherwise): the ingest class keeps
  // its own latency set, and each search-class 2xx samples how many
  // generations its pinned snapshot trailed the newest acknowledged
  // publish.
  std::vector<double> ingest_latencies_ms;
  int64_t ingest_completed = 0;
  int64_t ingest_2xx = 0;
  int64_t gen_lag_samples = 0;
  double gen_lag_sum = 0;
  int64_t gen_lag_max = 0;
  tgks::loadgen::SchedulerLag lag;  // Open-loop send-time accounting.
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void RunWorker(const Options& opts, const std::vector<std::string>& requests,
               const std::vector<uint32_t>& schedule,
               const std::vector<std::string>& ingest_requests,
               const std::vector<uint8_t>& ingest_schedule,
               std::atomic<int64_t>* max_generation, Clock::time_point start,
               Clock::time_point end, std::atomic<int64_t>* next_index,
               WorkerStats* stats) {
  int fd = ConnectTo(opts.host, opts.port);
  if (fd < 0) {
    ++stats->errors;
    return;
  }
  std::string buffer;
  std::string head;
  for (;;) {
    const int64_t i = next_index->fetch_add(1, std::memory_order_relaxed);
    if (opts.qps > 0) {
      const auto scheduled =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          static_cast<double>(i) / opts.qps));
      if (scheduled >= end) break;
      std::this_thread::sleep_until(scheduled);
      // Even when the run window closes before this tick gets out, the lag
      // is recorded: a late break is a missed tick, and hiding it is the
      // coordinated-omission bug this accounting exists to expose.
      stats->lag.RecordSend(
          std::chrono::duration<double, std::milli>(Clock::now() - scheduled)
              .count());
    }
    if (Clock::now() >= end) break;

    // With --ingest-mix, a fixed-seed class schedule marks this tick as a
    // write; otherwise (and on unmarked ticks) it is a search.
    const bool is_ingest =
        !ingest_schedule.empty() &&
        ingest_schedule[static_cast<size_t>(i) % ingest_schedule.size()] != 0;
    // Round-robin by default; with --zipf, the tick indexes a fixed-seed
    // popularity schedule so hot queries repeat across all connections.
    const size_t slot =
        schedule.empty()
            ? static_cast<size_t>(i) % requests.size()
            : schedule[static_cast<size_t>(i) % schedule.size()];
    const std::string& request =
        is_ingest
            ? ingest_requests[static_cast<size_t>(i) % ingest_requests.size()]
            : requests[slot];
    const auto sent_at = Clock::now();
    if (!WriteAll(fd, request)) {
      ++stats->errors;
      close(fd);
      fd = ConnectTo(opts.host, opts.port);
      if (fd < 0) return;
      buffer.clear();
      continue;
    }
    const int status = ReadResponse(fd, &buffer, &head);
    if (status < 0) {
      ++stats->errors;
      close(fd);
      fd = ConnectTo(opts.host, opts.port);
      if (fd < 0) return;
      buffer.clear();
      continue;
    }
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - sent_at)
            .count();
    if (is_ingest) {
      stats->ingest_latencies_ms.push_back(ms);
      ++stats->ingest_completed;
    } else {
      stats->latencies_ms.push_back(ms);
    }
    ++stats->completed;
    if (status >= 200 && status < 300 && is_ingest) {
      ++stats->ingest_2xx;
      // Every acknowledged write advances the newest generation any
      // connection has seen; searches measure their lag against it.
      const int64_t gen = SnapshotGenerationOf(head);
      int64_t seen = max_generation->load(std::memory_order_relaxed);
      while (gen > seen &&
             !max_generation->compare_exchange_weak(
                 seen, gen, std::memory_order_relaxed)) {
      }
    } else if (status >= 200 && status < 300) {
      ++stats->status_2xx;
      const std::string cache = CacheHeaderValue(head);
      if (cache == "hit") {
        ++stats->cache_hits;
      } else if (cache == "coalesced") {
        ++stats->cache_coalesced;
      } else if (cache == "miss") {
        ++stats->cache_misses;
      }
      const int64_t gen = SnapshotGenerationOf(head);
      if (gen >= 0 && !ingest_schedule.empty()) {
        const int64_t lag = std::max<int64_t>(
            0, max_generation->load(std::memory_order_relaxed) - gen);
        ++stats->gen_lag_samples;
        stats->gen_lag_sum += static_cast<double>(lag);
        stats->gen_lag_max = std::max(stats->gen_lag_max, lag);
      }
    } else if (status == 429) {
      ++stats->status_429;
      // Closed loop: honor the server's Retry-After before the next send.
      // (Open loop keeps its schedule — the point is a fixed offered load.)
      if (opts.qps <= 0) {
        const double remaining_s =
            std::chrono::duration<double>(end - Clock::now()).count();
        const double backoff_s = tgks::loadgen::RetryBackoffSeconds(
            tgks::loadgen::ParseRetryAfterSeconds(head), remaining_s);
        if (backoff_s > 0) {
          ++stats->retry_after_waits;
          std::this_thread::sleep_for(
              std::chrono::duration<double>(backoff_s));
        }
      }
    } else {
      ++stats->status_other;
    }
  }
  close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      opts.host = next("--host");
    } else if (arg == "--port") {
      opts.port = std::atoi(next("--port"));
    } else if (arg == "--workload") {
      opts.workload = next("--workload");
    } else if (arg == "--qps") {
      opts.qps = std::atof(next("--qps"));
    } else if (arg == "--duration-s") {
      opts.duration_s = std::atof(next("--duration-s"));
    } else if (arg == "--connections") {
      opts.connections = std::atoi(next("--connections"));
    } else if (arg == "--num-queries") {
      opts.num_queries = std::atoi(next("--num-queries"));
    } else if (arg == "--k") {
      opts.k = std::atoi(next("--k"));
    } else if (arg == "--deadline-ms") {
      opts.deadline_ms = std::atoi(next("--deadline-ms"));
    } else if (arg == "--parallel-keywords") {
      opts.parallel_keywords = true;
    } else if (arg == "--guided") {
      opts.guided = true;
    } else if (arg == "--zipf") {
      opts.zipf = std::atof(next("--zipf"));
    } else if (arg == "--no-cache") {
      opts.no_cache = true;
    } else if (arg == "--ingest-mix") {
      opts.ingest_mix = std::atof(next("--ingest-mix"));
    } else if (arg == "--label") {
      opts.label = next("--label");
    } else if (arg == "--json-out") {
      opts.json_out = next("--json-out");
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (opts.workload != "dblp" && opts.workload != "social") {
    std::fprintf(stderr, "--workload must be dblp or social\n");
    Usage(argv[0]);
    return 2;
  }
  if (opts.connections < 1 || opts.duration_s <= 0 || opts.num_queries < 1) {
    std::fprintf(stderr, "invalid --connections/--duration-s/--num-queries\n");
    return 2;
  }
  if (opts.ingest_mix < 0 || opts.ingest_mix > 1) {
    std::fprintf(stderr, "--ingest-mix must be in [0, 1]\n");
    return 2;
  }
  signal(SIGPIPE, SIG_IGN);

  // Regenerate the server's dataset so node ids in match sets line up.
  std::fprintf(stderr, "generating %s workload (%d queries)...\n",
               opts.workload.c_str(), opts.num_queries);
  tgks::datagen::QueryWorkloadParams params;
  params.num_queries = opts.num_queries;
  std::vector<tgks::datagen::WorkloadQuery> workload;
  tgks::graph::TemporalGraph base_graph;
  if (opts.workload == "dblp") {
    auto dataset = tgks::bench::MakeDblp();
    workload = tgks::datagen::MakeDblpWorkload(dataset, params);
    base_graph = std::move(dataset.graph);
  } else {
    auto dataset = tgks::bench::MakeSocial();
    workload = tgks::datagen::MakeMatchSetWorkload(
        dataset.graph, params, tgks::bench::ScaledMatches());
    base_graph = std::move(dataset.graph);
  }
  std::vector<std::string> requests;
  requests.reserve(workload.size());
  for (const auto& wq : workload) requests.push_back(BuildRequest(opts, wq));

  // Fixed-seed Zipf popularity schedule, shared by every connection so the
  // run replays the same hot-set regardless of worker interleaving.
  std::vector<uint32_t> schedule;
  if (opts.zipf > 0) {
    tgks::Rng rng(0x7a1f5eedULL);
    schedule.resize(1 << 16);
    for (uint32_t& s : schedule) {
      s = static_cast<uint32_t>(rng.Zipf(requests.size(), opts.zipf));
    }
  }

  // --ingest-mix: a fixed-seed class schedule (fraction R of ticks are
  // writes) plus a pool of pre-serialized ingest bodies. Anchors are base
  // nodes with non-empty validity, so the server accepts every batch.
  std::vector<std::string> ingest_requests;
  std::vector<uint8_t> ingest_schedule;
  if (opts.ingest_mix > 0) {
    tgks::Rng rng(0x16e57f10ULL);
    std::vector<tgks::graph::NodeId> anchors;
    anchors.reserve(1024);
    while (anchors.size() < 1024) {
      const auto n = static_cast<tgks::graph::NodeId>(
          rng.Uniform(static_cast<uint64_t>(base_graph.num_nodes())));
      if (!base_graph.node(n).validity.IsEmpty()) anchors.push_back(n);
    }
    ingest_requests.reserve(4096);
    for (int64_t t = 0; t < 4096; ++t) {
      ingest_requests.push_back(BuildIngestRequest(
          opts, base_graph, anchors[static_cast<size_t>(t) % anchors.size()],
          t));
    }
    ingest_schedule.resize(1 << 16);
    for (uint8_t& b : ingest_schedule) {
      b = rng.Bernoulli(opts.ingest_mix) ? 1 : 0;
    }
  }
  std::atomic<int64_t> max_generation{-1};

  const auto start = Clock::now();
  const auto end =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(opts.duration_s));
  std::atomic<int64_t> next_index{0};
  std::vector<WorkerStats> worker_stats(
      static_cast<size_t>(opts.connections));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(opts.connections));
  for (int c = 0; c < opts.connections; ++c) {
    workers.emplace_back(RunWorker, std::cref(opts), std::cref(requests),
                         std::cref(schedule), std::cref(ingest_requests),
                         std::cref(ingest_schedule), &max_generation, start,
                         end, &next_index, &worker_stats[c]);
  }
  for (auto& w : workers) w.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  WorkerStats total;
  for (const auto& ws : worker_stats) {
    total.completed += ws.completed;
    total.status_2xx += ws.status_2xx;
    total.status_429 += ws.status_429;
    total.status_other += ws.status_other;
    total.errors += ws.errors;
    total.retry_after_waits += ws.retry_after_waits;
    total.cache_hits += ws.cache_hits;
    total.cache_coalesced += ws.cache_coalesced;
    total.cache_misses += ws.cache_misses;
    total.ingest_completed += ws.ingest_completed;
    total.ingest_2xx += ws.ingest_2xx;
    total.gen_lag_samples += ws.gen_lag_samples;
    total.gen_lag_sum += ws.gen_lag_sum;
    total.gen_lag_max = std::max(total.gen_lag_max, ws.gen_lag_max);
    total.lag.Merge(ws.lag);
    total.latencies_ms.insert(total.latencies_ms.end(),
                              ws.latencies_ms.begin(),
                              ws.latencies_ms.end());
    total.ingest_latencies_ms.insert(total.ingest_latencies_ms.end(),
                                     ws.ingest_latencies_ms.begin(),
                                     ws.ingest_latencies_ms.end());
  }
  const int64_t planned =
      tgks::loadgen::PlannedRequests(opts.qps, opts.duration_s);
  std::sort(total.latencies_ms.begin(), total.latencies_ms.end());
  const double achieved =
      wall > 0 ? static_cast<double>(total.completed) / wall : 0;
  const double p50 = Percentile(total.latencies_ms, 0.50);
  const double p90 = Percentile(total.latencies_ms, 0.90);
  const double p99 = Percentile(total.latencies_ms, 0.99);

  std::printf("%-10s %-8s %5s %10s %12s %9s %9s %9s %6s %6s %6s\n", "label",
              "dataset", "conns", "target_qps", "achieved_qps", "p50_ms",
              "p90_ms", "p99_ms", "2xx", "429", "err");
  std::printf("%-10s %-8s %5d %10.1f %12.2f %9.3f %9.3f %9.3f %6lld %6lld"
              " %6lld\n",
              opts.label.c_str(), opts.workload.c_str(), opts.connections,
              opts.qps, achieved, p50, p90, p99,
              static_cast<long long>(total.status_2xx),
              static_cast<long long>(total.status_429),
              static_cast<long long>(total.errors + total.status_other));
  if (opts.qps > 0) {
    std::printf("open-loop: planned %lld, sent %lld, late %lld,"
                " lag mean %.3f ms, lag max %.3f ms\n",
                static_cast<long long>(planned),
                static_cast<long long>(total.lag.sends),
                static_cast<long long>(total.lag.late_sends),
                total.lag.MeanLagMs(), total.lag.max_lag_ms);
  } else if (total.retry_after_waits > 0) {
    std::printf("closed-loop: honored Retry-After %lld times\n",
                static_cast<long long>(total.retry_after_waits));
  }
  std::sort(total.ingest_latencies_ms.begin(),
            total.ingest_latencies_ms.end());
  const int64_t search_completed = total.completed - total.ingest_completed;
  const double search_qps =
      wall > 0 ? static_cast<double>(search_completed) / wall : 0;
  const double ingest_qps =
      wall > 0 ? static_cast<double>(total.ingest_completed) / wall : 0;
  const double ingest_p50 = Percentile(total.ingest_latencies_ms, 0.50);
  const double ingest_p90 = Percentile(total.ingest_latencies_ms, 0.90);
  const double ingest_p99 = Percentile(total.ingest_latencies_ms, 0.99);
  const double gen_lag_mean =
      total.gen_lag_samples > 0
          ? total.gen_lag_sum / static_cast<double>(total.gen_lag_samples)
          : 0;
  if (opts.ingest_mix > 0) {
    std::printf("mixed: search qps %.2f, ingest qps %.2f (mix %.2f);"
                " ingest p50 %.3f ms, p90 %.3f, p99 %.3f, 2xx %lld\n",
                search_qps, ingest_qps, opts.ingest_mix, ingest_p50,
                ingest_p90, ingest_p99,
                static_cast<long long>(total.ingest_2xx));
    std::printf("snapshot lag: mean %.3f generations, max %lld"
                " (final generation %lld)\n",
                gen_lag_mean, static_cast<long long>(total.gen_lag_max),
                static_cast<long long>(max_generation.load()));
  }
  const int64_t cache_tallied =
      total.cache_hits + total.cache_coalesced + total.cache_misses;
  const double cache_hit_rate =
      cache_tallied > 0
          ? static_cast<double>(total.cache_hits + total.cache_coalesced) /
                static_cast<double>(cache_tallied)
          : 0;
  if (cache_tallied > 0) {
    std::printf("cache: hits %lld, coalesced %lld, misses %lld,"
                " hit rate %.3f\n",
                static_cast<long long>(total.cache_hits),
                static_cast<long long>(total.cache_coalesced),
                static_cast<long long>(total.cache_misses), cache_hit_rate);
  }

  tgks::server::JsonWriter row;
  row.BeginObject();
  row.Key("bench");
  row.String("http_throughput");
  row.Key("label");
  row.String(opts.label);
  row.Key("dataset");
  row.String(opts.workload);
  row.Key("connections");
  row.Int(opts.connections);
  row.Key("target_qps");
  row.Double(opts.qps);
  row.Key("achieved_qps");
  row.Double(achieved);
  row.Key("wall_seconds");
  row.Double(wall);
  row.Key("completed");
  row.Int(total.completed);
  row.Key("p50_ms");
  row.Double(p50);
  row.Key("p90_ms");
  row.Double(p90);
  row.Key("p99_ms");
  row.Double(p99);
  row.Key("status_2xx");
  row.Int(total.status_2xx);
  row.Key("status_429");
  row.Int(total.status_429);
  row.Key("status_other");
  row.Int(total.status_other);
  row.Key("errors");
  row.Int(total.errors);
  row.Key("deadline_ms");
  row.Int(opts.deadline_ms == 0 ? -1 : opts.deadline_ms);
  row.Key("parallel_keywords");
  row.Bool(opts.parallel_keywords);
  row.Key("guided_search");
  row.Bool(opts.guided);
  row.Key("retry_after_waits");
  row.Int(total.retry_after_waits);
  // Zipf/cache accounting: zipf_s 0 = round-robin replay; the x-cache
  // tallies are all zero when the server runs without a result cache.
  row.Key("zipf_s");
  row.Double(opts.zipf);
  row.Key("cache_requested");
  row.Bool(!opts.no_cache);
  row.Key("cache_hits");
  row.Int(total.cache_hits);
  row.Key("cache_coalesced");
  row.Int(total.cache_coalesced);
  row.Key("cache_misses");
  row.Int(total.cache_misses);
  row.Key("cache_hit_rate");
  row.Double(cache_hit_rate);
  // Mixed-workload accounting (all zero without --ingest-mix): per-class
  // throughput and latency, plus how many generations search responses
  // trailed the newest acknowledged publish (docs/ingest.md).
  row.Key("ingest_mix");
  row.Double(opts.ingest_mix);
  row.Key("search_qps");
  row.Double(search_qps);
  row.Key("ingest_qps");
  row.Double(ingest_qps);
  row.Key("ingest_completed");
  row.Int(total.ingest_completed);
  row.Key("ingest_2xx");
  row.Int(total.ingest_2xx);
  row.Key("ingest_p50_ms");
  row.Double(ingest_p50);
  row.Key("ingest_p90_ms");
  row.Double(ingest_p90);
  row.Key("ingest_p99_ms");
  row.Double(ingest_p99);
  row.Key("gen_lag_mean");
  row.Double(gen_lag_mean);
  row.Key("gen_lag_max");
  row.Int(total.gen_lag_max);
  row.Key("final_generation");
  row.Int(max_generation.load());
  // Open-loop schedule accounting (all zero in closed-loop runs): how many
  // ticks the run planned, how many actually left the client, and how late
  // they were. planned >> sends or a large lag means the client could not
  // keep up and the measured latencies under-report true overload.
  row.Key("planned_requests");
  row.Int(planned);
  row.Key("sends");
  row.Int(total.lag.sends);
  row.Key("late_sends");
  row.Int(total.lag.late_sends);
  row.Key("sched_lag_mean_ms");
  row.Double(total.lag.MeanLagMs());
  row.Key("sched_lag_max_ms");
  row.Double(total.lag.max_lag_ms);
  row.EndObject();
  const std::string json_row = row.Take();
  std::printf("%s\n", json_row.c_str());
  if (!opts.json_out.empty()) {
    FILE* f = std::fopen(opts.json_out.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opts.json_out.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json_row.c_str());
    std::fclose(f);
  }
  // Nonzero exit when nothing completed, so CI smoke jobs fail loudly.
  return total.completed > 0 ? 0 : 1;
}
