// Deterministic work-count dump over the golden query suites.
//
// Prints one line per (graph, query) with the engine's search-work
// counters. The counters are pure functions of the algorithm (no clocks, no
// addresses, no thread interleaving), so the output is bit-stable across
// runs, build flavours (TGKS_NO_STATS included — every printed counter is
// ungated), and machines. scripts/workcount_check.sh diffs it against
// tests/golden/workcounts.expected in CI to catch silent changes to the
// amount of work the search performs: an optimization must move time, not
// pops.
//
// Usage: workcount_dump <golden-dir> [graph stems...]

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "graph/inverted_index.h"
#include "graph/serialization.h"
#include "search/query_parser.h"
#include "search/search_engine.h"

namespace {

std::vector<std::string> LoadQueryLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    const size_t last = line.find_last_not_of(" \t\r");
    lines.push_back(line.substr(first, last - first + 1));
  }
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <golden-dir> [graph stems...]\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  std::vector<std::string> stems = {"social", "archive", "sparse"};
  if (argc > 2) {
    stems.assign(argv + 2, argv + argc);
  }
  for (const std::string& stem : stems) {
    auto loaded = tgks::graph::LoadGraphFromFile(dir + "/" + stem + ".tgf");
    if (!loaded.ok()) {
      std::fprintf(stderr, "load %s: %s\n", stem.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    const tgks::graph::TemporalGraph g = std::move(loaded).value();
    const tgks::graph::InvertedIndex index(g);
    const tgks::search::SearchEngine engine(g, &index);
    int qi = 0;
    for (const std::string& text :
         LoadQueryLines(dir + "/" + stem + ".queries")) {
      auto query = tgks::search::ParseQuery(text);
      if (!query.ok()) {
        std::fprintf(stderr, "parse: %s\n", query.status().ToString().c_str());
        return 1;
      }
      tgks::search::SearchOptions options;
      options.k = 10;
      auto r = engine.Search(*query, options);
      if (!r.ok()) {
        std::fprintf(stderr, "search: %s\n", r.status().ToString().c_str());
        return 1;
      }
      const tgks::search::SearchCounters& c = r->counters;
      std::printf(
          "%s#%d ntds_pushed=%lld ntds_popped=%lld edges_scanned=%lld "
          "useless_pops=%lld subsumption_skips=%lld "
          "subsumption_evictions=%lld\n",
          stem.c_str(), qi++, static_cast<long long>(c.ntds_created),
          static_cast<long long>(c.pops),
          static_cast<long long>(c.edges_scanned),
          static_cast<long long>(c.useless_pops),
          static_cast<long long>(c.subsumption_skips),
          static_cast<long long>(c.subsumption_evictions));
    }
  }
  return 0;
}
