// Deterministic work-count dump over the golden query suites.
//
// Prints one line per (graph, query) with the engine's search-work
// counters. The counters are pure functions of the algorithm (no clocks, no
// addresses, no thread interleaving), so the output is bit-stable across
// runs, build flavours (TGKS_NO_STATS included — every printed counter is
// ungated), and machines. scripts/workcount_check.sh diffs it against
// tests/golden/workcounts.expected in CI to catch silent changes to the
// amount of work the search performs: an optimization must move time, not
// pops.
//
// Two suites:
//
//  * Golden files: tiny checked-in .tgf graphs with hand-written queries
//    (social / archive / sparse / weighted stems in tests/golden/).
//  * Generated datasets (--dataset dblp|dblp-bounded|social): the seeded
//    datagen
//    workloads the throughput benchmarks run, at a fixed scale and query
//    count independent of the TGKS_BENCH_* environment, so layout and
//    data-structure changes are pinned on benchmark-shaped graphs — not
//    just the toy ones. Each workload runs under both relevance and
//    duration ranking to cover the partition AND subsumption semantics.
//
// Usage: workcount_dump [--parallel] [--results] [--pruned] [--cache]
//            <golden-dir> [stems...]
//        workcount_dump [--parallel] [--results] [--pruned] [--cache]
//            --dataset <dblp|social> ...
//        workcount_dump --layout <dblp|social> [--layout ...]
//
// --cache runs the same suite with the in-engine query caches (levels 1-2,
// docs/caching.md) enabled and appends one "cache-summary <tag> ..." line
// per suite with the accumulated hit/miss tallies. The per-query counter
// and result lines must stay bit-identical to the uncached run — that is
// the differential scripts/cache_check.sh enforces.
//
// --pruned enables SearchOptions::reachability_prune and appends the
// reachability_prunes counter to each line (only then, so the unpruned
// expected files stay byte-identical). scripts/workcount_check.sh --pruned
// diffs the result fingerprints against the unpruned run where equality
// holds (golden suite, dblp) and pins the rest bit-for-bit (see
// docs/reachability.md, "Bounded stops").
//
// --guided enables SearchOptions::guided_search and appends the
// guided_reorders / bound_tightenings / guided_prunes counters to each line
// (only then, same byte-stability contract). scripts/workcount_check.sh
// --guided diffs the guided result fingerprints against the unguided run
// (guided search never changes the top-k) and asserts per-query
// ntds_popped(guided) <= ntds_popped(baseline) plus an aggregate savings
// floor (see docs/reachability.md, "Distance-guided search").
//
// --layout prints the ExpansionView packing statistics (slot counts,
// inline/pooled split, validity-pool interning hit rate) for a generated
// dataset; docs/performance.md quotes these numbers.
//
// --results replaces the counter lines with per-query result fingerprints
// (result count, stop reason, an order-sensitive hash over every result
// tree's signature/time/weight). --parallel runs the same queries in the
// engine's parallel-keyword mode (deterministic sub-mode, inline prefetch).
// The parallel mode's iterator-level counters legitimately include prefetch
// overshoot, so the CI gate (scripts/workcount_check.sh --results-only)
// compares the two modes through --results, where the engine's contract is
// bit-identical output.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cache/query_caches.h"
#include "datagen/dblp_generator.h"
#include "datagen/query_generator.h"
#include "datagen/social_generator.h"
#include "graph/expansion_view.h"
#include "graph/inverted_index.h"
#include "graph/reachability_index.h"
#include "graph/serialization.h"
#include "search/query_parser.h"
#include "search/search_engine.h"

namespace {

// Set from the command line; apply to both query suites.
bool g_parallel = false;  // Run queries in parallel-keyword mode.
bool g_results = false;   // Print result fingerprints, not work counters.
bool g_pruned = false;    // Run with the reachability prune enabled.
bool g_cache = false;     // Run with the query caches (levels 1-2) enabled.
bool g_guided = false;    // Run with distance-guided search enabled.

tgks::search::SearchOptions SuiteOptions(tgks::cache::QueryCaches* caches) {
  tgks::search::SearchOptions options;
  options.k = 10;
  options.reachability_prune = g_pruned;
  options.guided_search = g_guided;
  options.query_caches = caches;
  if (g_parallel) {
    options.parallel_keywords = true;
    // Deterministic budget + inline prefetch (null task_submitter): the
    // dump stays bit-stable without depending on a thread pool.
    options.parallel_deterministic = true;
  }
  return options;
}

/// Running totals of the engine's cache counters for one suite; printed as
/// one trailing summary line per suite in --cache mode only, so the cached
/// dump is the uncached dump plus the summary lines (scripts/cache_check.sh
/// strips them before diffing and then asserts hit-rate floors on them).
struct CacheTally {
  int64_t match_hits = 0;
  int64_t match_misses = 0;
  int64_t viability_hits = 0;
  int64_t viability_misses = 0;

  void Add(const tgks::search::SearchCounters& c) {
    match_hits += c.cache_match_hits;
    match_misses += c.cache_match_misses;
    viability_hits += c.cache_viability_hits;
    viability_misses += c.cache_viability_misses;
  }

  void Print(const std::string& tag) const {
    std::printf(
        "cache-summary %s match_hits=%lld match_misses=%lld "
        "viability_hits=%lld viability_misses=%lld\n",
        tag.c_str(), static_cast<long long>(match_hits),
        static_cast<long long>(match_misses),
        static_cast<long long>(viability_hits),
        static_cast<long long>(viability_misses));
  }
};

std::vector<std::string> LoadQueryLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    const size_t last = line.find_last_not_of(" \t\r");
    lines.push_back(line.substr(first, last - first + 1));
  }
  return lines;
}

/// Order-sensitive FNV-1a fingerprint over the full result list. Two runs
/// print the same line iff they returned the same trees, times, weights,
/// and stop reason in the same order.
void PrintResults(const std::string& tag, int index,
                  const tgks::search::SearchResponse& r) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const std::string& s) {
    for (const unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    h ^= 0xff;  // Separator so field boundaries matter.
    h *= 1099511628211ull;
  };
  char num[64];
  for (const auto& tree : r.results) {
    mix(tree.Signature());
    mix(tree.time.ToString());
    std::snprintf(num, sizeof(num), "%.17g", tree.total_weight);
    mix(num);
  }
  std::printf("%s#%d results=%zu stop=%.*s fp=%016llx\n", tag.c_str(), index,
              r.results.size(),
              static_cast<int>(
                  tgks::search::StopReasonName(r.stop_reason).size()),
              tgks::search::StopReasonName(r.stop_reason).data(),
              static_cast<unsigned long long>(h));
}

void PrintCounters(const std::string& tag, int index,
                   const tgks::search::SearchCounters& c) {
  std::printf(
      "%s#%d ntds_pushed=%lld ntds_popped=%lld edges_scanned=%lld "
      "useless_pops=%lld subsumption_skips=%lld "
      "subsumption_evictions=%lld",
      tag.c_str(), index, static_cast<long long>(c.ntds_created),
      static_cast<long long>(c.pops),
      static_cast<long long>(c.edges_scanned),
      static_cast<long long>(c.useless_pops),
      static_cast<long long>(c.subsumption_skips),
      static_cast<long long>(c.subsumption_evictions));
  // Only in --pruned mode, so the long-standing expected files stay
  // byte-identical while the pruned-mode golden files pin the new counter.
  if (g_pruned) {
    std::printf(" reachability_prunes=%lld",
                static_cast<long long>(c.reachability_prunes));
  }
  if (g_guided) {
    std::printf(" guided_reorders=%lld bound_tightenings=%lld"
                " guided_prunes=%lld",
                static_cast<long long>(c.guided_reorders),
                static_cast<long long>(c.bound_tightenings),
                static_cast<long long>(c.guided_prunes));
  }
  std::printf("\n");
}

int RunGoldenStems(const std::string& dir,
                   const std::vector<std::string>& stems) {
  for (const std::string& stem : stems) {
    auto loaded = tgks::graph::LoadGraphFromFile(dir + "/" + stem + ".tgf");
    if (!loaded.ok()) {
      std::fprintf(stderr, "load %s: %s\n", stem.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    const tgks::graph::TemporalGraph g = std::move(loaded).value();
    const tgks::graph::InvertedIndex index(g);
    const tgks::search::SearchEngine engine(g, &index);
    // Caches are per-graph (match lists embed node ids), so each stem gets
    // its own bundle; hits come from repeated keywords within the stem.
    tgks::cache::QueryCaches caches;
    CacheTally tally;
    int qi = 0;
    for (const std::string& text :
         LoadQueryLines(dir + "/" + stem + ".queries")) {
      auto query = tgks::search::ParseQuery(text);
      if (!query.ok()) {
        std::fprintf(stderr, "parse: %s\n", query.status().ToString().c_str());
        return 1;
      }
      auto r = engine.Search(*query, SuiteOptions(g_cache ? &caches : nullptr));
      if (!r.ok()) {
        std::fprintf(stderr, "search: %s\n", r.status().ToString().c_str());
        return 1;
      }
      tally.Add(r->counters);
      if (g_results) {
        PrintResults(stem, qi++, *r);
      } else {
        PrintCounters(stem, qi++, r->counters);
      }
    }
    if (g_cache) tally.Print(stem);
  }
  return 0;
}

// Fixed-size dataset suite parameters. Deliberately NOT tied to
// TGKS_BENCH_SCALE / TGKS_BENCH_QUERIES: the expected file pins one exact
// workload.
constexpr int32_t kDatasetQueries = 12;

int BuildDataset(const std::string& name, tgks::graph::TemporalGraph* graph,
                 std::vector<tgks::datagen::WorkloadQuery>* workload) {
  tgks::datagen::QueryWorkloadParams params;
  params.num_queries = kDatasetQueries;
  if (name == "dblp" || name == "dblp-bounded") {
    tgks::datagen::DblpParams dp;
    dp.num_papers = 8000;
    dp.num_authors = 3000;
    dp.num_venues = 60;
    dp.vocab_size = 2500;
    dp.seed = 42;
    // dblp-bounded truncates each paper 8 instants past publication, so
    // subtree validity is no longer a timeline suffix — the coverage hole
    // the append-only default can never exercise (docs/reachability.md).
    if (name == "dblp-bounded") dp.validity_horizon = 8;
    auto d = tgks::datagen::GenerateDblp(dp);
    if (!d.ok()) {
      std::fprintf(stderr, "dblp generation failed: %s\n",
                   d.status().ToString().c_str());
      return 1;
    }
    *workload = tgks::datagen::MakeDblpWorkload(d.value(), params);
    *graph = std::move(d).value().graph;
  } else if (name == "social") {
    tgks::datagen::SocialParams sp;
    sp.num_nodes = 15000;
    sp.edges_per_node = 2;
    sp.edge_connectivity = 0.7;
    sp.seed = 7;
    auto d = tgks::datagen::GenerateSocial(sp);
    if (!d.ok()) {
      std::fprintf(stderr, "social generation failed: %s\n",
                   d.status().ToString().c_str());
      return 1;
    }
    *graph = std::move(d).value().graph;
    tgks::datagen::MatchSetParams mp;
    mp.matches_min = 50;
    mp.matches_max = 400;
    *workload = tgks::datagen::MakeMatchSetWorkload(*graph, params, mp);
  } else {
    std::fprintf(stderr, "unknown dataset '%s' (dblp|dblp-bounded|social)\n",
                 name.c_str());
    return 2;
  }
  return 0;
}

int RunDataset(const std::string& name) {
  tgks::graph::TemporalGraph graph;
  std::vector<tgks::datagen::WorkloadQuery> workload;
  if (const int rc = BuildDataset(name, &graph, &workload); rc != 0) return rc;

  const tgks::graph::InvertedIndex index(graph);
  const tgks::search::SearchEngine engine(graph, &index);
  tgks::cache::QueryCaches caches;
  CacheTally tally;
  const tgks::search::SearchOptions options =
      SuiteOptions(g_cache ? &caches : nullptr);
  // Pass 1: the workload's own ranking (relevance -> partition semantics).
  // Pass 2: duration ranking -> subsumption semantics, so Algorithm 2's
  // counters are pinned on benchmark-shaped graphs too. In --cache mode the
  // second pass reuses the first pass's match lists, so its match/viability
  // lookups are all hits — the warm half of the hit-rate floor the
  // cache_check.sh gate asserts.
  const char* pass_tags[2] = {"", "-duration"};
  for (int pass = 0; pass < 2; ++pass) {
    int qi = 0;
    for (const auto& wq : workload) {
      tgks::search::Query query = wq.query;
      if (pass == 1) {
        query.ranking.factors = {tgks::search::RankFactor::kDurationDesc};
      }
      auto r = wq.matches.empty()
                   ? engine.Search(query, options)
                   : engine.SearchWithMatches(query, wq.matches, options);
      if (!r.ok()) {
        std::fprintf(stderr, "search: %s\n", r.status().ToString().c_str());
        return 1;
      }
      tally.Add(r->counters);
      if (g_results) {
        PrintResults(name + pass_tags[pass], qi++, *r);
      } else {
        PrintCounters(name + pass_tags[pass], qi++, r->counters);
      }
    }
  }
  if (g_cache) tally.Print(name);
  return 0;
}

int RunLayout(const std::string& name) {
  tgks::graph::TemporalGraph graph;
  std::vector<tgks::datagen::WorkloadQuery> workload;
  if (const int rc = BuildDataset(name, &graph, &workload); rc != 0) return rc;
  const auto& s = graph.expansion_view().layout_stats();
  std::printf(
      "%s edge_slots=%lld inline_edge_slots=%lld pooled_edge_slots=%lld "
      "inline_node_slots=%lld pooled_node_slots=%lld pool_entries=%lld "
      "intern_hits=%lld\n",
      name.c_str(), static_cast<long long>(s.edge_slots),
      static_cast<long long>(s.inline_edge_slots),
      static_cast<long long>(s.pooled_edge_slots),
      static_cast<long long>(s.inline_node_slots),
      static_cast<long long>(s.pooled_node_slots),
      static_cast<long long>(s.pool_entries),
      static_cast<long long>(s.intern_hits));
  // Reachability-index build phase and label-size profile. build_seconds is
  // wall time and intentionally NOT part of any golden file.
  const auto& rs = graph.reachability().stats();
  std::printf(
      "%s-reach epochs=%lld sccs=%lld dag_edges=%lld chains=%lld "
      "label_entries=%lld label_bytes=%lld build_seconds=%.3f\n",
      name.c_str(), static_cast<long long>(rs.epochs),
      static_cast<long long>(rs.sccs),
      static_cast<long long>(rs.dag_edges),
      static_cast<long long>(rs.chains),
      static_cast<long long>(rs.label_entries),
      static_cast<long long>(rs.label_bytes), rs.build_seconds);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the mode flags (position-independent) before the suite args.
  std::vector<char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--parallel") == 0) {
      g_parallel = true;
    } else if (std::strcmp(argv[i], "--results") == 0) {
      g_results = true;
    } else if (std::strcmp(argv[i], "--pruned") == 0) {
      g_pruned = true;
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      g_cache = true;
    } else if (std::strcmp(argv[i], "--guided") == 0) {
      g_guided = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (args.empty()) {
    std::fprintf(
        stderr,
        "usage: %s [--parallel] [--results] [--pruned] [--cache] [--guided] "
        "<golden-dir> [graph stems...]\n"
        "       %s [--parallel] [--results] [--pruned] [--cache] [--guided] "
        "--dataset <dblp|dblp-bounded|social> ...\n"
        "       %s --layout <dblp|dblp-bounded|social> [--layout ...]\n",
        argv[0], argv[0], argv[0]);
    return 2;
  }
  if (std::strcmp(args[0], "--dataset") == 0 ||
      std::strcmp(args[0], "--layout") == 0) {
    const bool layout = std::strcmp(args[0], "--layout") == 0;
    const char* flag = layout ? "--layout" : "--dataset";
    for (size_t i = 0; i < args.size(); i += 2) {
      if (std::strcmp(args[i], flag) != 0 || i + 1 >= args.size()) {
        std::fprintf(stderr, "usage: %s %s <dblp|social> ...\n", argv[0],
                     flag);
        return 2;
      }
      const int rc = layout ? RunLayout(args[i + 1]) : RunDataset(args[i + 1]);
      if (rc != 0) return rc;
    }
    return 0;
  }
  const std::string dir = args[0];
  std::vector<std::string> stems = {"social", "archive", "sparse", "weighted"};
  if (args.size() > 1) {
    stems.assign(args.begin() + 1, args.end());
  }
  return RunGoldenStems(dir, stems);
}
